//! A minimal JSON reader/writer for golden files and drift reports.
//!
//! The workspace builds offline with no external crates, so the golden
//! harness carries its own parser. It supports exactly the JSON the
//! harness emits: objects, arrays, strings, finite numbers, booleans
//! and null. Numbers render via Rust's shortest round-trip `{:?}`
//! formatting, so a bless → parse → bless cycle is byte-stable.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order (the writer
/// inserts them sorted, which keeps blessed files diff-friendly).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Parse failure with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

/// Shortest round-trip float rendering. Integral values render with a
/// `.0` suffix (Rust's `{:?}`), which parses fine.
///
/// # Panics
///
/// Panics on non-finite values — the golden harness must reject them
/// before serialization.
fn write_number(out: &mut String, n: f64) {
    assert!(n.is_finite(), "JSON cannot represent {n}");
    let _ = write!(out, "{n:?}");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii run");
        let n: f64 = text.parse().map_err(|_| JsonError {
            message: format!("invalid number '{text}'"),
            offset: start,
        })?;
        if !n.is_finite() {
            return Err(JsonError {
                message: format!("non-finite number '{text}'"),
                offset: start,
            });
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": [1, -2.5e-3, true, null], "b": "x\n\"y\"", "c": {}}"#;
        let v = Json::parse(doc).unwrap();
        let a = v.get("a").unwrap();
        match a {
            Json::Arr(items) => {
                assert_eq!(items[0].as_f64(), Some(1.0));
                assert_eq!(items[1].as_f64(), Some(-2.5e-3));
                assert_eq!(items[2], Json::Bool(true));
                assert_eq!(items[3], Json::Null);
            }
            other => panic!("not an array: {other:?}"),
        }
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("c"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn render_parse_roundtrip_is_stable() {
        let v = Json::Obj(vec![
            ("schema".to_string(), Json::Num(1.0)),
            (
                "fields".to_string(),
                Json::Obj(vec![
                    ("points[00].ber".to_string(), Json::Num(0.015625)),
                    ("points[01].ber".to_string(), Json::Num(1.0 / 3.0)),
                ]),
            ),
            ("name".to_string(), Json::Str("quote\"\\n".to_string())),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        // Byte-stable: render(parse(render(x))) == render(x).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn shortest_roundtrip_floats() {
        for x in [0.1, 1.0, -3.0, 1e-12, 123456.789, f64::MIN_POSITIVE] {
            let v = Json::Num(x);
            let back = Json::parse(v.render().trim()).unwrap();
            assert_eq!(back.as_f64(), Some(x), "{x}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1e999").is_err(), "non-finite must be rejected");
    }
}
