//! IEEE 802.11a-1999 Annex G known-answer tests.
//!
//! Annex G walks one complete example through the transmitter: a
//! 100-byte MPDU at 36 Mbit/s (16-QAM, rate 3/4) with scrambler seed
//! 1011101. Every bit-domain TX stage of `wlan-phy` is checked
//! bit-exactly against the independent [`crate::refimpl`] restatement
//! of the standard on this message, plus the constants the standard
//! prints outright (the all-ones scrambler sequence, the SIGNAL field
//! bits). IQ-domain stages (constellation mapping, the OFDM time
//! waveform) are checked with an EVM-style RMS tolerance instead of
//! bit equality.

use crate::refimpl;
use wlan_dsp::Complex;
use wlan_phy::params::{CodeRate, Modulation, Rate};
use wlan_phy::{
    convolutional, frame, interleaver::Interleaver, modulation, pilots, puncture,
    scrambler::Scrambler, signal_field, Transmitter,
};

/// The Annex G example rate: 36 Mbit/s.
pub const ANNEX_G_RATE: Rate = Rate::R36;

/// The Annex G scrambler seed (1011101 binary).
pub const ANNEX_G_SEED: u8 = 0b1011101;

/// The Annex G MPDU: a 24-byte MAC header, 72 bytes of message text
/// ("Joy, bright spark of divinity…" — including the standard's own
/// "insired" typo), and the 4-byte FCS, 100 bytes total.
pub const ANNEX_G_PSDU: [u8; 100] = [
    // MAC header.
    0x04, 0x02, 0x00, 0x2E, 0x00, 0x60, 0x08, 0xCD, 0x37, 0xA6, 0x00, 0x20, 0xD6, 0x01, 0x3C, 0xF1,
    0x00, 0x60, 0x08, 0xAD, 0x3B, 0xAF, 0x00, 0x00, //
    // "Joy, bright spark of divinity,\n"
    0x4A, 0x6F, 0x79, 0x2C, 0x20, 0x62, 0x72, 0x69, 0x67, 0x68, 0x74, 0x20, 0x73, 0x70, 0x61, 0x72,
    0x6B, 0x20, 0x6F, 0x66, 0x20, 0x64, 0x69, 0x76, 0x69, 0x6E, 0x69, 0x74, 0x79, 0x2C,
    0x0A, //
    // "Daughter of Elysium,\n"
    0x44, 0x61, 0x75, 0x67, 0x68, 0x74, 0x65, 0x72, 0x20, 0x6F, 0x66, 0x20, 0x45, 0x6C, 0x79, 0x73,
    0x69, 0x75, 0x6D, 0x2C, 0x0A, //
    // "Fire-insired we trea"
    0x46, 0x69, 0x72, 0x65, 0x2D, 0x69, 0x6E, 0x73, 0x69, 0x72, 0x65, 0x64, 0x20, 0x77, 0x65, 0x20,
    0x74, 0x72, 0x65, 0x61, //
    // FCS.
    0x67, 0x33, 0x21, 0xB6,
];

/// The 24 SIGNAL bits for the Annex G example (RATE = 1011 for
/// 36 Mbit/s, LENGTH = 100 LSB-first, even parity, zero tail).
pub const ANNEX_G_SIGNAL_BITS: [u8; 24] = [
    1, 0, 1, 1, 0, // RATE + reserved
    0, 0, 1, 0, 0, 1, 1, 0, 0, 0, 0, 0, // LENGTH = 100
    0, // parity
    0, 0, 0, 0, 0, 0, // tail
];

/// Which comparison discipline a stage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Bit-exact equality required.
    Bit,
    /// RMS error within an EVM-style tolerance.
    Iq,
}

/// Outcome of one known-answer stage.
#[derive(Debug, Clone)]
pub struct StageResult {
    /// Stage name (stable identifier for reports).
    pub stage: &'static str,
    /// Comparison discipline.
    pub domain: Domain,
    /// Whether the stage agreed.
    pub ok: bool,
    /// What was compared and how it went.
    pub detail: String,
}

fn bit_stage(stage: &'static str, expected: &[u8], actual: &[u8]) -> StageResult {
    if expected.len() != actual.len() {
        return StageResult {
            stage,
            domain: Domain::Bit,
            ok: false,
            detail: format!(
                "length mismatch: expected {} bits, got {}",
                expected.len(),
                actual.len()
            ),
        };
    }
    match expected.iter().zip(actual.iter()).position(|(a, b)| a != b) {
        Some(i) => StageResult {
            stage,
            domain: Domain::Bit,
            ok: false,
            detail: format!(
                "first mismatch at bit {i} (expected {}, got {})",
                expected[i], actual[i]
            ),
        },
        None => StageResult {
            stage,
            domain: Domain::Bit,
            ok: true,
            detail: format!("{} bits bit-exact", expected.len()),
        },
    }
}

fn iq_stage(
    stage: &'static str,
    expected: &[Complex],
    actual: &[Complex],
    rms_tol: f64,
) -> StageResult {
    if expected.len() != actual.len() {
        return StageResult {
            stage,
            domain: Domain::Iq,
            ok: false,
            detail: format!(
                "length mismatch: expected {} samples, got {}",
                expected.len(),
                actual.len()
            ),
        };
    }
    let mut err = 0.0;
    let mut reference = 0.0;
    for (e, a) in expected.iter().zip(actual.iter()) {
        err += (*a - *e).norm_sqr();
        reference += e.norm_sqr();
    }
    let rms = (err / reference.max(f64::MIN_POSITIVE)).sqrt();
    StageResult {
        stage,
        domain: Domain::Iq,
        ok: rms <= rms_tol,
        detail: format!(
            "{} samples, relative RMS error {rms:.3e} (tolerance {rms_tol:.1e})",
            expected.len()
        ),
    }
}

/// The DATA-field bit vector before scrambling: SERVICE + PSDU + tail
/// + pad, all-zero outside the PSDU.
fn unscrambled_bits() -> Vec<u8> {
    let n_sym = ANNEX_G_RATE.data_symbols(ANNEX_G_PSDU.len());
    let mut bits = vec![0u8; 16];
    bits.extend(frame::bytes_to_bits(&ANNEX_G_PSDU));
    bits.resize(n_sym * ANNEX_G_RATE.ndbps(), 0);
    bits
}

/// Scrambled DATA bits with the tail re-zeroed, computed by `wlan-phy`
/// when `phy` is set and by the refimpl otherwise.
fn scrambled_bits(phy: bool) -> Vec<u8> {
    let mut bits = unscrambled_bits();
    if phy {
        Scrambler::new(ANNEX_G_SEED).scramble_in_place(&mut bits);
    } else {
        bits = refimpl::scramble(ANNEX_G_SEED, &bits);
    }
    let tail_start = 16 + 8 * ANNEX_G_PSDU.len();
    for b in bits[tail_start..tail_start + 6].iter_mut() {
        *b = 0;
    }
    bits
}

/// Runs every Annex G known-answer stage.
pub fn run_all() -> Vec<StageResult> {
    let mut out = Vec::new();

    // §17.3.5.4: the printed 127-bit all-ones scrambler sequence.
    let published = refimpl::all_ones_sequence();
    out.push(bit_stage(
        "scrambler-all-ones-sequence",
        &published,
        &Scrambler::new(0x7F).sequence(),
    ));

    // The Annex G seed's stream, refimpl vs phy.
    let n = 16 + 8 * ANNEX_G_PSDU.len() + 6;
    let mut phy_stream = vec![0u8; n];
    Scrambler::new(ANNEX_G_SEED).scramble_in_place(&mut phy_stream);
    out.push(bit_stage(
        "scrambler-annex-g-seed",
        &refimpl::scramble_sequence(ANNEX_G_SEED, n),
        &phy_stream,
    ));

    // SIGNAL field bits: embedded constant vs refimpl vs phy.
    out.push(bit_stage(
        "signal-field-refimpl",
        &ANNEX_G_SIGNAL_BITS,
        &refimpl::signal_bits(ANNEX_G_RATE.rate_field(), ANNEX_G_PSDU.len()),
    ));
    out.push(bit_stage(
        "signal-field-phy",
        &ANNEX_G_SIGNAL_BITS,
        &signal_field::signal_bits(ANNEX_G_RATE, ANNEX_G_PSDU.len()),
    ));

    // Scrambling of the actual DATA bits.
    let ref_scrambled = scrambled_bits(false);
    out.push(bit_stage(
        "data-scrambler",
        &ref_scrambled,
        &scrambled_bits(true),
    ));

    // Convolutional coder on the scrambled stream.
    let ref_coded = refimpl::encode_k7(&ref_scrambled);
    out.push(bit_stage(
        "convolutional-coder",
        &ref_coded,
        &convolutional::encode(&ref_scrambled),
    ));

    // Rate-3/4 puncturing.
    let ref_punctured = refimpl::puncture(&ref_coded, 3, 4);
    out.push(bit_stage(
        "puncture-3-4",
        &ref_punctured,
        &puncture::puncture(&ref_coded, CodeRate::R34),
    ));

    // Per-symbol interleaving of the first symbol.
    let ncbps = ANNEX_G_RATE.ncbps();
    let il = Interleaver::new(ANNEX_G_RATE);
    out.push(bit_stage(
        "interleaver",
        &refimpl::interleave(ncbps, ANNEX_G_RATE.nbpsc(), &ref_punctured[..ncbps]),
        &il.interleave(&ref_punctured[..ncbps]),
    ));

    // The whole DATA-field bit pipeline end to end.
    let ref_field = refimpl::data_field_symbols(&ANNEX_G_PSDU, ANNEX_G_SEED, 144, 192, 4, 3, 4);
    let phy_field = frame::build_data_field(&ANNEX_G_PSDU, ANNEX_G_RATE, ANNEX_G_SEED);
    let ref_flat: Vec<u8> = ref_field.iter().flatten().copied().collect();
    let phy_flat: Vec<u8> = phy_field.symbol_bits.iter().flatten().copied().collect();
    out.push(bit_stage("data-field-pipeline", &ref_flat, &phy_flat));

    // Pilot polarity over two full periods.
    let ref_pol: Vec<u8> = (0..254)
        .map(|n| (refimpl::pilot_polarity(n) < 0.0) as u8)
        .collect();
    let phy_pol: Vec<u8> = (0..254)
        .map(|n| (pilots::polarity(n) < 0.0) as u8)
        .collect();
    out.push(bit_stage("pilot-polarity", &ref_pol, &phy_pol));

    // 16-QAM mapping of the first interleaved symbol (IQ domain; both
    // sides compute ±n·K_mod so they agree to rounding).
    let ref_mapped = refimpl::map_bits(4, &ref_field[0]);
    let phy_mapped = modulation::map_bits(&phy_field.symbol_bits[0], Modulation::Qam16);
    out.push(iq_stage("qam16-mapping", &ref_mapped, &phy_mapped, 1e-12));

    // Time-domain waveform: SIGNAL + every DATA symbol, naive IDFT vs
    // the transmitter's FFT. FFT-vs-DFT roundoff is ~1e-13; the 1e-9
    // band is the EVM-style tolerance for IQ stages.
    let burst = Transmitter::new(ANNEX_G_RATE).transmit(&ANNEX_G_PSDU);
    let mut ref_wave = Vec::new();
    let signal_coded = refimpl::encode_k7(&ANNEX_G_SIGNAL_BITS);
    let signal_mapped = refimpl::map_bits(1, &refimpl::interleave(48, 1, &signal_coded));
    ref_wave.extend(refimpl::idft_symbol(&refimpl::assemble_symbol(
        &signal_mapped,
        0,
    )));
    for (i, sym_bits) in ref_field.iter().enumerate() {
        let mapped = refimpl::map_bits(4, sym_bits);
        ref_wave.extend(refimpl::idft_symbol(&refimpl::assemble_symbol(
            &mapped,
            i + 1,
        )));
    }
    let tx_wave = &burst.samples[320..320 + ref_wave.len()];
    out.push(iq_stage("ofdm-waveform", &ref_wave, tx_wave, 1e-9));

    out
}

/// `true` when every stage agreed.
pub fn all_pass(results: &[StageResult]) -> bool {
    results.iter().all(|r| r.ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_the_annex_g_text() {
        let text = std::str::from_utf8(&ANNEX_G_PSDU[24..96]).unwrap();
        assert!(text.starts_with("Joy, bright spark of divinity,"));
        assert!(text.contains("Daughter of Elysium,"));
        assert_eq!(ANNEX_G_PSDU.len(), 100);
    }

    #[test]
    fn signal_constant_is_self_consistent() {
        // RATE bits decode back to 36 Mbit/s and LENGTH to 100.
        let mut rate = [0u8; 4];
        rate.copy_from_slice(&ANNEX_G_SIGNAL_BITS[..4]);
        assert_eq!(Rate::from_rate_field(rate), Some(Rate::R36));
        let len: usize = (0..12)
            .map(|i| (ANNEX_G_SIGNAL_BITS[5 + i] as usize) << i)
            .sum();
        assert_eq!(len, 100);
    }

    #[test]
    fn every_stage_passes() {
        let results = run_all();
        assert_eq!(results.len(), 12);
        for r in &results {
            assert!(r.ok, "stage '{}' failed: {}", r.stage, r.detail);
        }
    }

    #[test]
    fn bit_stages_are_bit_exact_and_iq_stages_toleranced() {
        let results = run_all();
        let bit_stages = results.iter().filter(|r| r.domain == Domain::Bit).count();
        let iq_stages = results.iter().filter(|r| r.domain == Domain::Iq).count();
        assert_eq!(bit_stages, 10);
        assert_eq!(iq_stages, 2);
    }
}
