//! Tolerance-aware golden-file comparison.
//!
//! A golden file pins a flat set of named scalar measurements (a
//! "snapshot" of an experiment sweep) as schema-versioned JSON under
//! `tests/golden/`. A check either matches within per-field tolerances,
//! or produces a [`DriftReport`] naming every drifted field — rendered
//! human-readably for the panic message and as JSON for CI artifacts.
//!
//! Workflow:
//!
//! * `cargo test` compares against the committed goldens.
//! * `WLANSIM_BLESS=1 cargo test` rewrites them from the current code.
//! * A missing golden fails with the bless instruction rather than
//!   silently passing.
//!
//! Tolerances live in code ([`TolerancePolicy`]), not in the files:
//! the simulation is fully deterministic on a given platform, so the
//! bands only need to absorb cross-platform `libm` rounding, and the
//! policy is part of the reviewed source.

use crate::json::Json;
use std::path::{Path, PathBuf};

/// On-disk golden schema version.
pub const GOLDEN_SCHEMA: u32 = 1;

/// Environment variable that switches checks into bless (rewrite) mode.
pub const BLESS_ENV: &str = "WLANSIM_BLESS";

/// `true` when the current process was asked to re-bless goldens.
pub fn bless_requested() -> bool {
    std::env::var(BLESS_ENV).is_ok_and(|v| v == "1")
}

/// A symmetric acceptance band: a field passes when
/// `|actual − expected| ≤ abs + rel·|expected|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute term.
    pub abs: f64,
    /// Relative term (fraction of the expected magnitude).
    pub rel: f64,
}

impl Tolerance {
    /// An exact-match requirement (both terms zero).
    pub const EXACT: Tolerance = Tolerance { abs: 0.0, rel: 0.0 };

    /// Absolute-only band.
    pub fn abs(abs: f64) -> Tolerance {
        Tolerance { abs, rel: 0.0 }
    }

    /// Relative-only band.
    pub fn rel(rel: f64) -> Tolerance {
        Tolerance { abs: 0.0, rel }
    }

    /// The allowed |Δ| for an expected value.
    pub fn allowed(&self, expected: f64) -> f64 {
        self.abs + self.rel * expected.abs()
    }
}

/// Field-pattern → tolerance rules with a default fallback. Patterns
/// match the whole field name; `*` matches any run of characters, so
/// `points[*].ber` can be loose while `points[*].bits` stays exact.
/// The **last** matching rule wins.
#[derive(Debug, Clone)]
pub struct TolerancePolicy {
    default: Tolerance,
    rules: Vec<(String, Tolerance)>,
}

/// Full-string glob with `*` as the only metacharacter.
fn glob_match(pattern: &[u8], s: &[u8]) -> bool {
    match pattern.split_first() {
        None => s.is_empty(),
        Some((b'*', rest)) => {
            glob_match(rest, s) || (!s.is_empty() && glob_match(pattern, &s[1..]))
        }
        Some((p, rest)) => s
            .split_first()
            .is_some_and(|(c, tail)| c == p && glob_match(rest, tail)),
    }
}

impl TolerancePolicy {
    /// A policy where unmatched fields use `default`.
    pub fn new(default: Tolerance) -> Self {
        TolerancePolicy {
            default,
            rules: Vec::new(),
        }
    }

    /// Exact match unless a rule says otherwise.
    pub fn exact() -> Self {
        Self::new(Tolerance::EXACT)
    }

    /// Adds a pattern rule (builder style; later rules override
    /// earlier ones).
    pub fn with_rule(mut self, pattern: &str, tol: Tolerance) -> Self {
        self.rules.push((pattern.to_string(), tol));
        self
    }

    /// The tolerance applying to `field`.
    pub fn for_field(&self, field: &str) -> Tolerance {
        self.rules
            .iter()
            .rev()
            .find(|(p, _)| glob_match(p.as_bytes(), field.as_bytes()))
            .map(|(_, t)| *t)
            .unwrap_or(self.default)
    }
}

/// One drifted field. `expected`/`actual` are `None` when the field is
/// missing on that side (schema drift rather than value drift).
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Field path, e.g. `points[02].ber`.
    pub field: String,
    /// Committed golden value.
    pub expected: Option<f64>,
    /// Freshly measured value.
    pub actual: Option<f64>,
    /// The |Δ| the policy would have allowed.
    pub allowed: f64,
}

impl Drift {
    fn describe(&self) -> String {
        match (self.expected, self.actual) {
            (Some(e), Some(a)) => format!(
                "field '{}': expected {e:e}, got {a:e}, |delta| = {:e} > allowed {:e}",
                self.field,
                (a - e).abs(),
                self.allowed
            ),
            (Some(e), None) => format!(
                "field '{}': present in golden (value {e:e}) but not produced by the code",
                self.field
            ),
            (None, Some(a)) => format!(
                "field '{}': produced by the code (value {a:e}) but absent from the golden",
                self.field
            ),
            (None, None) => unreachable!("a drift names at least one side"),
        }
    }
}

/// Why a golden check failed.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Golden name (file stem).
    pub name: String,
    /// Path of the golden file involved.
    pub path: PathBuf,
    /// Non-field problem (missing file, bad schema, parse error).
    pub problem: Option<String>,
    /// Per-field drifts, in field order.
    pub drifts: Vec<Drift>,
}

impl DriftReport {
    /// Human-readable multi-line report (the panic message).
    pub fn render(&self) -> String {
        let mut out = format!("golden '{}' ({}):\n", self.name, self.path.display());
        if let Some(p) = &self.problem {
            out.push_str("  ");
            out.push_str(p);
            out.push('\n');
        }
        for d in &self.drifts {
            out.push_str("  ");
            out.push_str(&d.describe());
            out.push('\n');
        }
        out.push_str(&format!(
            "  ({} drifted field(s); run with {BLESS_ENV}=1 to re-bless if the change is intended)",
            self.drifts.len()
        ));
        out
    }

    /// Machine-readable form for the CI artifact.
    pub fn to_json(&self) -> Json {
        let drifts = self
            .drifts
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("field".to_string(), Json::Str(d.field.clone())),
                    (
                        "expected".to_string(),
                        d.expected.map_or(Json::Null, Json::Num),
                    ),
                    ("actual".to_string(), d.actual.map_or(Json::Null, Json::Num)),
                    ("allowed".to_string(), Json::Num(d.allowed)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Num(GOLDEN_SCHEMA as f64)),
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "golden_path".to_string(),
                Json::Str(self.path.display().to_string()),
            ),
            (
                "problem".to_string(),
                self.problem
                    .as_ref()
                    .map_or(Json::Null, |p| Json::Str(p.clone())),
            ),
            ("drifts".to_string(), Json::Arr(drifts)),
        ])
    }
}

/// Outcome of a successful check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenStatus {
    /// All fields within tolerance of the committed golden.
    Matched,
    /// Bless mode: the golden file was (re)written.
    Blessed,
}

fn golden_json(name: &str, fields: &[(String, f64)]) -> Json {
    let mut sorted: Vec<(String, f64)> = fields.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Obj(vec![
        ("schema".to_string(), Json::Num(GOLDEN_SCHEMA as f64)),
        ("name".to_string(), Json::Str(name.to_string())),
        (
            "fields".to_string(),
            Json::Obj(sorted.into_iter().map(|(k, v)| (k, Json::Num(v))).collect()),
        ),
    ])
}

fn report(name: &str, path: &Path, problem: String) -> DriftReport {
    DriftReport {
        name: name.to_string(),
        path: path.to_path_buf(),
        problem: Some(problem),
        drifts: Vec::new(),
    }
}

/// Checks `fields` against `<golden_dir>/<name>.json` (or rewrites it
/// when the process runs with `WLANSIM_BLESS=1`).
///
/// Every actual value must be finite — a NaN/∞ measurement is reported
/// as drift, never blessed into a golden.
pub fn check(
    golden_dir: &Path,
    name: &str,
    fields: &[(String, f64)],
    policy: &TolerancePolicy,
) -> Result<GoldenStatus, DriftReport> {
    check_with_mode(golden_dir, name, fields, policy, bless_requested())
}

/// [`check`] with the bless decision injected (so the harness's own
/// tests behave identically whether or not the suite runs under
/// `WLANSIM_BLESS=1`).
pub fn check_with_mode(
    golden_dir: &Path,
    name: &str,
    fields: &[(String, f64)],
    policy: &TolerancePolicy,
    bless: bool,
) -> Result<GoldenStatus, DriftReport> {
    let path = golden_dir.join(format!("{name}.json"));
    if let Some((field, value)) = fields.iter().find(|(_, v)| !v.is_finite()) {
        return Err(report(
            name,
            &path,
            format!(
                "measured field '{field}' is non-finite ({value}); refusing to compare or bless"
            ),
        ));
    }

    if bless {
        std::fs::create_dir_all(golden_dir)
            .map_err(|e| report(name, &path, format!("cannot create golden dir: {e}")))?;
        let text = golden_json(name, fields).render();
        std::fs::write(&path, text)
            .map_err(|e| report(name, &path, format!("cannot write golden: {e}")))?;
        return Ok(GoldenStatus::Blessed);
    }

    let text = std::fs::read_to_string(&path).map_err(|e| {
        report(
            name,
            &path,
            format!("missing or unreadable golden ({e}); run with {BLESS_ENV}=1 to create it"),
        )
    })?;
    let doc = Json::parse(&text)
        .map_err(|e| report(name, &path, format!("golden is not valid JSON: {e}")))?;
    match doc.get("schema").and_then(Json::as_f64) {
        Some(s) if s == GOLDEN_SCHEMA as f64 => {}
        other => {
            return Err(report(
                name,
                &path,
                format!("golden schema {other:?} != supported {GOLDEN_SCHEMA}"),
            ))
        }
    }
    let expected: Vec<(String, f64)> = match doc.get("fields") {
        Some(Json::Obj(pairs)) => {
            let mut out = Vec::with_capacity(pairs.len());
            for (k, v) in pairs {
                match v.as_f64() {
                    Some(n) => out.push((k.clone(), n)),
                    None => {
                        return Err(report(
                            name,
                            &path,
                            format!("golden field '{k}' is not a number"),
                        ))
                    }
                }
            }
            out
        }
        _ => return Err(report(name, &path, "golden has no 'fields' object".into())),
    };

    let mut drifts = Vec::new();
    for (k, e) in &expected {
        let tol = policy.for_field(k);
        match fields.iter().find(|(ak, _)| ak == k) {
            Some((_, a)) => {
                if (a - e).abs() > tol.allowed(*e) {
                    drifts.push(Drift {
                        field: k.clone(),
                        expected: Some(*e),
                        actual: Some(*a),
                        allowed: tol.allowed(*e),
                    });
                }
            }
            None => drifts.push(Drift {
                field: k.clone(),
                expected: Some(*e),
                actual: None,
                allowed: tol.allowed(*e),
            }),
        }
    }
    for (k, a) in fields {
        if !expected.iter().any(|(ek, _)| ek == k) {
            drifts.push(Drift {
                field: k.clone(),
                expected: None,
                actual: Some(*a),
                allowed: policy.for_field(k).allowed(*a),
            });
        }
    }

    if drifts.is_empty() {
        Ok(GoldenStatus::Matched)
    } else {
        Err(DriftReport {
            name: name.to_string(),
            path,
            problem: None,
            drifts,
        })
    }
}

/// Writes `report` as JSON into `drift_dir` (best effort) and returns
/// the file path if it was written.
pub fn write_drift_report(drift_dir: &Path, report: &DriftReport) -> Option<PathBuf> {
    std::fs::create_dir_all(drift_dir).ok()?;
    let path = drift_dir.join(format!("{}.json", report.name));
    std::fs::write(&path, report.to_json().render()).ok()?;
    Some(path)
}

/// Test-facing wrapper: checks, writes the drift artifact on failure,
/// and panics with the rendered report.
///
/// # Panics
///
/// Panics with the drift report when the check fails.
pub fn assert_golden(
    golden_dir: &Path,
    drift_dir: &Path,
    name: &str,
    fields: &[(String, f64)],
    policy: &TolerancePolicy,
) -> GoldenStatus {
    match check(golden_dir, name, fields, policy) {
        Ok(status) => status,
        Err(rep) => {
            let where_ = write_drift_report(drift_dir, &rep)
                .map(|p| format!("\n  (drift report: {})", p.display()))
                .unwrap_or_default();
            panic!("{}{}", rep.render(), where_);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique temp dir per test, cleaned up on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let pid = std::process::id();
            let dir = std::env::temp_dir().join(format!("wlansim-golden-{tag}-{pid}"));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn write_golden(dir: &Path, name: &str, fields: &[(String, f64)]) {
        let text = golden_json(name, fields).render();
        std::fs::write(dir.join(format!("{name}.json")), text).unwrap();
    }

    fn fields(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn policy_patterns_and_precedence() {
        let p = TolerancePolicy::exact()
            .with_rule("points[*].ber*", Tolerance::abs(1.0))
            .with_rule("points[*].bits", Tolerance::abs(0.5))
            .with_rule("points[03].bits", Tolerance::EXACT);
        assert_eq!(p.for_field("points[00].ber").abs, 1.0);
        assert_eq!(p.for_field("points[00].ber_adjacent").abs, 1.0);
        // `points[*].ber` alone would not match the suffixed field.
        let q = TolerancePolicy::exact().with_rule("points[*].ber", Tolerance::abs(1.0));
        assert_eq!(q.for_field("points[00].ber_adjacent").abs, 0.0);
        // Last matching rule wins.
        assert_eq!(p.for_field("points[01].bits").abs, 0.5);
        assert_eq!(p.for_field("points[03].bits").abs, 0.0);
        assert_eq!(p.for_field("elsewhere").abs, 0.0);
    }

    #[test]
    fn match_within_tolerance() {
        let t = TempDir::new("match");
        let f = fields(&[("a", 1.0), ("b", 2.0)]);
        write_golden(&t.0, "g", &f);
        let near = fields(&[("a", 1.0 + 1e-9), ("b", 2.0)]);
        let policy = TolerancePolicy::new(Tolerance::abs(1e-6));
        assert_eq!(
            check_with_mode(&t.0, "g", &near, &policy, false),
            Ok(GoldenStatus::Matched)
        );
    }

    #[test]
    fn drift_names_the_field() {
        let t = TempDir::new("drift");
        write_golden(&t.0, "g", &fields(&[("points[02].ber", 0.01), ("n", 4.0)]));
        let bad = fields(&[("points[02].ber", 0.02), ("n", 4.0)]);
        let policy = TolerancePolicy::new(Tolerance::abs(1e-3));
        let rep = check_with_mode(&t.0, "g", &bad, &policy, false).unwrap_err();
        assert_eq!(rep.drifts.len(), 1);
        assert_eq!(rep.drifts[0].field, "points[02].ber");
        assert!(rep.render().contains("points[02].ber"), "{}", rep.render());
        assert!(rep.render().contains(BLESS_ENV));
    }

    #[test]
    fn missing_and_extra_fields_are_drift() {
        let t = TempDir::new("schema-drift");
        write_golden(&t.0, "g", &fields(&[("old", 1.0), ("kept", 2.0)]));
        let now = fields(&[("kept", 2.0), ("new", 3.0)]);
        let rep = check_with_mode(&t.0, "g", &now, &TolerancePolicy::exact(), false).unwrap_err();
        let names: Vec<&str> = rep.drifts.iter().map(|d| d.field.as_str()).collect();
        assert_eq!(names, vec!["old", "new"]);
        assert!(rep.drifts[0].actual.is_none());
        assert!(rep.drifts[1].expected.is_none());
    }

    #[test]
    fn missing_golden_fails_with_bless_hint() {
        let t = TempDir::new("missing");
        let rep = check_with_mode(
            &t.0,
            "nope",
            &fields(&[("a", 1.0)]),
            &TolerancePolicy::exact(),
            false,
        )
        .unwrap_err();
        assert!(rep.problem.as_deref().unwrap().contains(BLESS_ENV));
    }

    #[test]
    fn non_finite_measurement_is_rejected() {
        let t = TempDir::new("nan");
        write_golden(&t.0, "g", &fields(&[("a", 1.0)]));
        let rep = check_with_mode(
            &t.0,
            "g",
            &fields(&[("a", f64::NAN)]),
            &TolerancePolicy::new(Tolerance::rel(1e9)),
            false,
        )
        .unwrap_err();
        assert!(rep.problem.as_deref().unwrap().contains("non-finite"));
    }

    #[test]
    fn drift_report_json_shape() {
        let rep = DriftReport {
            name: "g".into(),
            path: PathBuf::from("tests/golden/g.json"),
            problem: None,
            drifts: vec![Drift {
                field: "x".into(),
                expected: Some(1.0),
                actual: Some(2.0),
                allowed: 0.5,
            }],
        };
        let j = rep.to_json();
        assert_eq!(j.get("name").unwrap().as_str(), Some("g"));
        match j.get("drifts").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items[0].get("field").unwrap().as_str(), Some("x"));
                assert_eq!(items[0].get("expected").unwrap().as_f64(), Some(1.0));
            }
            other => panic!("not an array: {other:?}"),
        }
    }

    #[test]
    fn golden_file_render_is_sorted_and_stable() {
        let f = fields(&[("zz", 1.5), ("aa", -2.0)]);
        let text = golden_json("g", &f).render();
        assert!(text.find("\"aa\"").unwrap() < text.find("\"zz\"").unwrap());
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.render(), text);
    }
}
