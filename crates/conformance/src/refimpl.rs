//! An independent executable restatement of the IEEE 802.11a-1999 TX
//! equations, written directly from the standard's clause text.
//!
//! This module deliberately shares **no code** with `wlan-phy`: the
//! scrambler keeps its state as an explicit x₁..x₇ register array, the
//! convolutional coder as a tapped delay line, the interleaver as the
//! two clause-17.3.5.6 index formulas, the mapper as the literal
//! Tables 78–82, and the OFDM modulator as a naive O(N²) inverse DFT.
//! Agreement between the two implementations on the Annex G reference
//! message is then meaningful evidence that *both* implement the
//! standard — the same cross-checking argument the paper makes between
//! the SPW reference design and the AMS co-simulation, and the
//! symbolic-verification framing of the WiMax paper in PAPERS.md.
//!
//! Where the standard publishes the answer outright (the 127-bit
//! all-ones scrambler sequence of §17.3.5.4), the constant is embedded
//! so the check is anchored to the document, not to either program.

use wlan_dsp::Complex;

/// §17.3.5.4: the 127-bit output of the scrambler seeded with all
/// ones, packed MSB-first (the 128th bit of the last byte is padding).
/// This is the sequence printed in the standard.
const ALL_ONES_SEQUENCE_PACKED: [u8; 16] = [
    0x0E, 0xF2, 0xC9, 0x02, 0x26, 0x2E, 0xB6, 0x0C, 0xD4, 0xE7, 0xB4, 0x2A, 0xFA, 0x51, 0xB8, 0xFE,
];

/// The published all-ones scrambler sequence as 127 individual bits.
pub fn all_ones_sequence() -> [u8; 127] {
    let mut out = [0u8; 127];
    for (i, o) in out.iter_mut().enumerate() {
        *o = (ALL_ONES_SEQUENCE_PACKED[i / 8] >> (7 - i % 8)) & 1;
    }
    out
}

/// §17.3.5.4 scrambler S(x) = x⁷ + x⁴ + 1, state held as the explicit
/// register bits x[1..=7] (`x[0]` unused). `seed` bit *i* (LSB-first)
/// initializes x_{i+1}, matching the convention of
/// `wlan_phy::scrambler::Scrambler::new`.
pub fn scramble_sequence(seed: u8, n: usize) -> Vec<u8> {
    assert!(seed != 0 && seed < 0x80, "7-bit non-zero seed");
    let mut x = [0u8; 8];
    for (i, xi) in x.iter_mut().enumerate().skip(1) {
        *xi = (seed >> (i - 1)) & 1;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let feedback = x[7] ^ x[4];
        out.push(feedback);
        for i in (2..=7).rev() {
            x[i] = x[i - 1];
        }
        x[1] = feedback;
    }
    out
}

/// XORs `bits` with the scrambler stream for `seed`.
pub fn scramble(seed: u8, bits: &[u8]) -> Vec<u8> {
    scramble_sequence(seed, bits.len())
        .iter()
        .zip(bits.iter())
        .map(|(s, b)| s ^ b)
        .collect()
}

/// §17.3.5.5 rate-1/2 convolutional coder, K = 7, as a tapped delay
/// line: output A uses generator 133₈ (taps at delays 0, 2, 3, 5, 6),
/// output B uses 171₈ (taps at delays 0, 1, 2, 3, 6). A is transmitted
/// first.
pub fn encode_k7(bits: &[u8]) -> Vec<u8> {
    let mut d = [0u8; 7]; // d[0] = current input, d[1..] = delay line
    let mut out = Vec::with_capacity(2 * bits.len());
    for &b in bits {
        for i in (1..7).rev() {
            d[i] = d[i - 1];
        }
        d[0] = b & 1;
        out.push(d[0] ^ d[2] ^ d[3] ^ d[5] ^ d[6]);
        out.push(d[0] ^ d[1] ^ d[2] ^ d[3] ^ d[6]);
    }
    out
}

/// §17.3.5.6 puncturing: indices *kept* within one puncturing period of
/// the A₀B₀A₁B₁… stream. Rate 2/3 steals B₁ from every 4 coded bits;
/// rate 3/4 steals B₁ and A₂ from every 6.
fn kept_indices(num: usize, den: usize) -> (usize, &'static [usize]) {
    match (num, den) {
        (1, 2) => (2, &[0, 1]),
        (2, 3) => (4, &[0, 1, 2]),
        (3, 4) => (6, &[0, 1, 2, 5]),
        _ => panic!("no 802.11a puncturing pattern for rate {num}/{den}"),
    }
}

/// Punctures a coded stream to rate `num/den`.
pub fn puncture(coded: &[u8], num: usize, den: usize) -> Vec<u8> {
    let (period, kept) = kept_indices(num, den);
    assert!(
        coded.len().is_multiple_of(period),
        "coded length {} not a multiple of the period {period}",
        coded.len()
    );
    let mut out = Vec::with_capacity(coded.len() / period * kept.len());
    for block in coded.chunks_exact(period) {
        for &k in kept {
            out.push(block[k]);
        }
    }
    out
}

/// §17.3.5.6 interleaver: transmit position of input bit `k` within an
/// `ncbps`-bit block, straight from the two published formulas
/// (i = (N/16)(k mod 16) + ⌊k/16⌋, then
/// j = s⌊i/s⌋ + (i + N − ⌊16i/N⌋) mod s with s = max(nbpsc/2, 1)).
pub fn interleave_position(ncbps: usize, nbpsc: usize, k: usize) -> usize {
    let s = (nbpsc / 2).max(1);
    let i = (ncbps / 16) * (k % 16) + k / 16;
    s * (i / s) + (i + ncbps - 16 * i / ncbps) % s
}

/// Interleaves one `ncbps`-bit block.
pub fn interleave(ncbps: usize, nbpsc: usize, bits: &[u8]) -> Vec<u8> {
    assert_eq!(bits.len(), ncbps);
    let mut out = vec![0u8; ncbps];
    for (k, &b) in bits.iter().enumerate() {
        out[interleave_position(ncbps, nbpsc, k)] = b;
    }
    out
}

/// Tables 78–82 (§17.3.5.7): one axis value for a per-axis Gray bit
/// group, *before* K_mod normalization.
fn table_level(bits: &[u8]) -> f64 {
    let val = match bits {
        // Table 78/79: BPSK & one QPSK axis.
        [0] => -1,
        [1] => 1,
        // Table 81: 16-QAM axis.
        [0, 0] => -3,
        [0, 1] => -1,
        [1, 1] => 1,
        [1, 0] => 3,
        // Table 82: 64-QAM axis.
        [0, 0, 0] => -7,
        [0, 0, 1] => -5,
        [0, 1, 1] => -3,
        [0, 1, 0] => -1,
        [1, 1, 0] => 1,
        [1, 1, 1] => 3,
        [1, 0, 1] => 5,
        [1, 0, 0] => 7,
        other => panic!("no table row for bit group {other:?}"),
    };
    val as f64
}

/// §17.3.5.7 K_mod for a constellation of `nbpsc` bits per carrier.
pub fn kmod(nbpsc: usize) -> f64 {
    match nbpsc {
        1 => 1.0,
        2 => 1.0 / 2f64.sqrt(),
        4 => 1.0 / 10f64.sqrt(),
        6 => 1.0 / 42f64.sqrt(),
        n => panic!("no 802.11a constellation carries {n} bits"),
    }
}

/// Maps interleaved coded bits to constellation points per Tables
/// 78–82: the first half of each group drives I, the second half Q
/// (BPSK leaves Q at zero).
pub fn map_bits(nbpsc: usize, bits: &[u8]) -> Vec<Complex> {
    assert!(bits.len().is_multiple_of(nbpsc));
    let norm = kmod(nbpsc);
    bits.chunks_exact(nbpsc)
        .map(|g| {
            if nbpsc == 1 {
                Complex::new(table_level(g) * norm, 0.0)
            } else {
                Complex::new(
                    table_level(&g[..nbpsc / 2]) * norm,
                    table_level(&g[nbpsc / 2..]) * norm,
                )
            }
        })
        .collect()
}

/// §17.3.5.9: pilot polarity p_n for OFDM symbol n — the all-ones
/// scrambler sequence cycled with period 127, 0 → +1 and 1 → −1,
/// read from the *embedded published sequence*, not computed.
pub fn pilot_polarity(n: usize) -> f64 {
    if all_ones_sequence()[n % 127] == 0 {
        1.0
    } else {
        -1.0
    }
}

/// §17.3.4: the 24 SIGNAL field bits for a RATE field (R1..R4, as
/// transmitted) and a 12-bit LENGTH, built literally: RATE, reserved
/// zero, LENGTH LSB-first, even parity over bits 0..17, six zero tail
/// bits. The SIGNAL field is *not* scrambled.
pub fn signal_bits(rate_field: [u8; 4], length: usize) -> [u8; 24] {
    assert!(length <= 0xFFF);
    let mut bits = [0u8; 24];
    bits[..4].copy_from_slice(&rate_field);
    // bits[4] is the reserved bit, zero.
    for i in 0..12 {
        bits[5 + i] = ((length >> i) & 1) as u8;
    }
    let parity = bits[..17].iter().fold(0u8, |acc, b| acc ^ b);
    bits[17] = parity;
    // bits[18..24] are the zero SIGNAL tail.
    bits
}

/// §17.3.5.9 subcarrier layout: logical index k ∈ −26..26 → FFT bin.
fn bin_of(k: i32) -> usize {
    if k >= 0 {
        k as usize
    } else {
        (64 + k) as usize
    }
}

/// Assembles the 64 frequency bins for 48 data values plus the pilots
/// of OFDM symbol `symbol_index`: data on −26..26 skipping 0 and the
/// pilots at ∓21, ∓7; pilots carry (1, 1, 1, −1)·p_n.
pub fn assemble_symbol(data: &[Complex], symbol_index: usize) -> [Complex; 64] {
    assert_eq!(data.len(), 48);
    let mut freq = [Complex::ZERO; 64];
    let p = pilot_polarity(symbol_index);
    let mut next = 0;
    for k in -26..=26i32 {
        if k == 0 {
            continue;
        }
        match k {
            -21 | -7 | 7 => freq[bin_of(k)] = Complex::from_re(p),
            21 => freq[bin_of(k)] = Complex::from_re(-p),
            _ => {
                freq[bin_of(k)] = data[next];
                next += 1;
            }
        }
    }
    assert_eq!(next, 48);
    freq
}

/// Naive O(N²) unitary inverse DFT of the 64 bins, scaled by √(64/52)
/// to the workspace's unit-mean-power convention (see
/// `wlan_phy::ofdm`), returning the 80-sample symbol with its
/// 16-sample cyclic prefix.
pub fn idft_symbol(freq: &[Complex; 64]) -> Vec<Complex> {
    let scale = (64f64 / 52.0).sqrt() / 64f64.sqrt();
    let mut body = [Complex::ZERO; 64];
    for (n, b) in body.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (k, x) in freq.iter().enumerate() {
            acc += *x * Complex::cis(2.0 * std::f64::consts::PI * (k * n) as f64 / 64.0);
        }
        *b = acc * scale;
    }
    let mut out = Vec::with_capacity(80);
    out.extend_from_slice(&body[48..]);
    out.extend_from_slice(&body);
    out
}

/// Bytes → bits, LSB of each byte first (§17.3.5.1's bit ordering).
pub fn bytes_to_bits_lsb_first(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * bytes.len());
    for &byte in bytes {
        for i in 0..8 {
            out.push((byte >> i) & 1);
        }
    }
    out
}

/// The full §17.3.5 DATA-field bit pipeline for one PSDU: SERVICE +
/// PSDU + 6 tail + pad (all zero), scrambled; tail re-zeroed; coded;
/// punctured; interleaved per symbol. Returns one interleaved
/// `ncbps`-bit block per OFDM symbol.
#[allow(clippy::too_many_arguments)]
pub fn data_field_symbols(
    psdu: &[u8],
    seed: u8,
    ndbps: usize,
    ncbps: usize,
    nbpsc: usize,
    code_num: usize,
    code_den: usize,
) -> Vec<Vec<u8>> {
    let payload = 16 + 8 * psdu.len() + 6;
    let n_sym = payload.div_ceil(ndbps);
    let mut bits = vec![0u8; 16];
    bits.extend(bytes_to_bits_lsb_first(psdu));
    bits.resize(n_sym * ndbps, 0);
    let mut scrambled = scramble(seed, &bits);
    let tail_start = 16 + 8 * psdu.len();
    for b in scrambled[tail_start..tail_start + 6].iter_mut() {
        *b = 0;
    }
    let punctured = puncture(&encode_k7(&scrambled), code_num, code_den);
    assert_eq!(punctured.len(), n_sym * ncbps);
    punctured
        .chunks_exact(ncbps)
        .map(|blk| interleave(ncbps, nbpsc, blk))
        .collect()
}

/// Straightforward full-search soft-decision Viterbi decoder for the
/// (133, 171) K=7 code: per-call `Vec` state, an explicit `1e300`
/// sentinel for unreachable states, and an ascending scan over every
/// `(predecessor, input)` pair. This is the pre-optimization kernel kept
/// verbatim as the bit-identity reference for the butterfly-form
/// `wlan_phy::viterbi::ViterbiDecoder` (`kernel_bench` asserts the two
/// agree bit-for-bit on random LLR streams).
///
/// LLR convention: positive favors bit 0; traceback starts at the
/// maximum-likelihood end state.
///
/// # Panics
///
/// Panics if `llrs.len()` is odd.
pub fn viterbi_reference(llrs: &[f64]) -> Vec<u8> {
    assert!(
        llrs.len().is_multiple_of(2),
        "need two LLRs per trellis step"
    );
    let n_steps = llrs.len() / 2;
    if n_steps == 0 {
        return Vec::new();
    }
    const N_STATES: usize = 64;
    const INF: f64 = 1e300;
    // Generator polynomials 133/171 (octal), bit-reversed so the newest
    // input sits at bit 0 of the shift register.
    const G0_REV: u32 = 0b110_1101;
    const G1_REV: u32 = 0b100_1111;
    let parity = |v: u32| (v.count_ones() & 1) as u8;

    let mut metric = vec![INF; N_STATES];
    metric[0] = 0.0;
    let mut next = vec![INF; N_STATES];
    let mut decisions = vec![0u64; n_steps];

    for (t, pair) in llrs.chunks_exact(2).enumerate() {
        let (la, lb) = (pair[0], pair[1]);
        next.fill(INF);
        let mut dec: u64 = 0;
        for prev in 0..N_STATES as u32 {
            let m = metric[prev as usize];
            if m >= INF {
                continue;
            }
            for input in 0..2u32 {
                let sr = (prev << 1) | input;
                let a = parity(sr & G0_REV);
                let b = parity(sr & G1_REV);
                let cost = m + if a == 1 { la } else { -la } + if b == 1 { lb } else { -lb };
                let ns = (sr & 0x3f) as usize;
                if cost < next[ns] {
                    next[ns] = cost;
                    let evicted = (prev >> 5) & 1;
                    if evicted == 1 {
                        dec |= 1 << ns;
                    } else {
                        dec &= !(1u64 << ns);
                    }
                }
            }
        }
        decisions[t] = dec;
        std::mem::swap(&mut metric, &mut next);
    }

    let mut state = metric
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(s, _)| s)
        .unwrap_or(0);
    let mut bits = vec![0u8; n_steps];
    for t in (0..n_steps).rev() {
        bits[t] = (state & 1) as u8;
        let evicted = (decisions[t] >> state) & 1;
        state = (state >> 1) | ((evicted as usize) << 5);
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ones_sequence_is_a_balanced_m_sequence() {
        let seq = all_ones_sequence();
        // A 127-bit m-sequence has 64 ones and 63 zeros.
        assert_eq!(seq.iter().map(|&b| b as usize).sum::<usize>(), 64);
        // And the generator reproduces it from the all-ones seed.
        assert_eq!(scramble_sequence(0x7F, 127), seq.to_vec());
    }

    #[test]
    fn scrambler_period_is_127() {
        let first = scramble_sequence(0b1011101, 127);
        let twice = scramble_sequence(0b1011101, 254);
        assert_eq!(&twice[127..], first.as_slice());
    }

    #[test]
    fn coder_impulse_response_is_the_generators() {
        // A single 1 followed by zeros reads the generator taps back
        // out on each arm: A = 1011011 (133₈), B = 1111001 (171₈).
        let out = encode_k7(&[1, 0, 0, 0, 0, 0, 0]);
        let a: Vec<u8> = out.iter().step_by(2).copied().collect();
        let b: Vec<u8> = out.iter().skip(1).step_by(2).copied().collect();
        assert_eq!(a, vec![1, 0, 1, 1, 0, 1, 1]);
        assert_eq!(b, vec![1, 1, 1, 1, 0, 0, 1]);
    }

    #[test]
    fn puncture_patterns() {
        let coded: Vec<u8> = (0..12).map(|i| (i % 2) as u8).collect();
        assert_eq!(puncture(&coded, 1, 2).len(), 12);
        assert_eq!(puncture(&coded, 2, 3).len(), 9);
        assert_eq!(puncture(&coded, 3, 4).len(), 8);
        // Rate 3/4 keeps A0 B0 A1 B2 of each period.
        let idx: Vec<u8> = (0..6).collect();
        assert_eq!(puncture(&idx, 3, 4), vec![0, 1, 2, 5]);
    }

    #[test]
    fn interleaver_is_a_permutation() {
        for (ncbps, nbpsc) in [(48, 1), (96, 2), (192, 4), (288, 6)] {
            let mut seen = vec![false; ncbps];
            for k in 0..ncbps {
                let j = interleave_position(ncbps, nbpsc, k);
                assert!(!seen[j], "collision at {j}");
                seen[j] = true;
            }
        }
    }

    #[test]
    fn signal_parity_is_even() {
        let bits = signal_bits([1, 0, 1, 1], 100);
        let ones: u8 = bits[..18].iter().sum();
        assert_eq!(ones % 2, 0);
        assert_eq!(&bits[18..], &[0; 6]);
    }

    #[test]
    fn mapper_unit_power() {
        for nbpsc in [1usize, 2, 4, 6] {
            // Average power over all bit patterns must be 1.
            let mut total = 0.0;
            let patterns = 1usize << nbpsc;
            for p in 0..patterns {
                let bits: Vec<u8> = (0..nbpsc).map(|i| ((p >> i) & 1) as u8).collect();
                total += map_bits(nbpsc, &bits)[0].norm_sqr();
            }
            assert!(
                (total / patterns as f64 - 1.0).abs() < 1e-12,
                "nbpsc {nbpsc}"
            );
        }
    }

    #[test]
    fn idft_of_single_bin_is_a_tone() {
        let mut freq = [Complex::ZERO; 64];
        freq[1] = Complex::ONE;
        let sym = idft_symbol(&freq);
        assert_eq!(sym.len(), 80);
        // CP is a copy of the last 16 body samples.
        for i in 0..16 {
            let d = sym[i] - sym[64 + i];
            assert!(d.abs() < 1e-12);
        }
        // Constant modulus tone.
        let expect = (64f64 / 52.0).sqrt() / 8.0;
        for s in &sym[16..] {
            assert!((s.abs() - expect).abs() < 1e-12);
        }
    }
}
