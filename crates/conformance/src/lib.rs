//! Conformance & golden-vector verification for the WLAN simulation
//! workspace.
//!
//! The paper trusts its 802.11a receiver because independent views of
//! the same design — the SPW reference, SpectreRF characterization,
//! and the AMS co-simulation — agree. This crate builds that argument
//! as machine-checkable layers:
//!
//! * [`annex_g`] — known-answer tests pinning every `wlan-phy` TX
//!   stage to IEEE 802.11a-1999 on the Annex G reference message,
//!   cross-checked against [`refimpl`], an independent executable
//!   restatement of the standard's equations.
//! * [`mc`] — sharded Monte-Carlo AWGN sweeps (via `wlan-exec`) held
//!   inside Wilson acceptance bands around the exact closed-form
//!   curves of `wlan_meas::analytic`.
//! * [`golden`] + [`json`] — a tolerance-aware golden-file harness
//!   (schema-versioned JSON under `tests/golden/`, `WLANSIM_BLESS=1`
//!   re-bless mode, drift reports for CI artifacts).
//! * [`pinned`] — the pinned experiment sweeps (ip3 / level / nf /
//!   blocking / EVM) whose snapshots the goldens freeze.
//! * [`manifest`] — schema validation for the `wlansim` run manifest
//!   (`RUN_MANIFEST.json`; the writer lives in `wlan_sim::manifest`).
//!
//! The `wlan-conformance` CLI runs the whole suite and exits non-zero
//! on any failure; `tests/tests/conformance.rs` and
//! `tests/tests/golden.rs` gate the same checks in `cargo test`.

pub mod annex_g;
pub mod golden;
pub mod json;
pub mod manifest;
pub mod mc;
pub mod pinned;
pub mod refimpl;

pub use golden::{
    assert_golden, bless_requested, check, DriftReport, GoldenStatus, Tolerance, TolerancePolicy,
};
