//! Power spectral density estimation (Welch's method) and derived
//! channel-power measurements.

use crate::complex::Complex;
use crate::fft::{fftshift, fftshift_freqs, Fft};
use crate::window::Window;

/// Welch PSD estimate with 50 % overlap and a Hann window.
///
/// Returns `(freqs_hz, psd)` in [`fftshift`] order: frequencies from
/// `-fs/2` to `fs/2`, PSD in power per hertz (so that
/// `sum(psd)·fs/nfft ≈ mean(|x|²)`).
///
/// # Panics
///
/// Panics if `nfft` is not a power of two or `x.len() < nfft`.
///
/// ```
/// use wlan_dsp::{Complex, spectrum::welch_psd};
/// let x: Vec<Complex> = (0..4096)
///     .map(|n| Complex::cis(2.0 * std::f64::consts::PI * 0.25 * n as f64))
///     .collect();
/// let (freqs, psd) = welch_psd(&x, 512, 1.0);
/// let peak = psd.iter().cloned().fold(f64::MIN, f64::max);
/// let peak_idx = psd.iter().position(|&p| p == peak).unwrap();
/// assert!((freqs[peak_idx] - 0.25).abs() < 0.01);
/// ```
pub fn welch_psd(x: &[Complex], nfft: usize, sample_rate_hz: f64) -> (Vec<f64>, Vec<f64>) {
    // Sweeps call this repeatedly at a handful of sizes; cache the
    // derived plans per thread instead of re-deriving twiddles and
    // window coefficients every invocation.
    thread_local! {
        static PLANS: std::cell::RefCell<Vec<WelchPlan>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    PLANS.with(|plans| {
        let mut plans = plans.borrow_mut();
        if let Some(p) = plans.iter().find(|p| p.nfft() == nfft) {
            return p.psd(x, sample_rate_hz);
        }
        let plan = WelchPlan::new(nfft);
        let out = plan.psd(x, sample_rate_hz);
        plans.push(plan);
        out
    })
}

/// A reusable Welch estimator: the FFT plan (twiddle/reversal tables)
/// and window coefficients are derived once at construction instead of
/// on every [`welch_psd`] call, and the per-segment FFT buffer is
/// reused across segments.
///
/// Repeated estimation at a fixed `nfft` (sweeps measuring ACPR per
/// point, the RF characterization benches) should hold one of these.
#[derive(Debug, Clone)]
pub struct WelchPlan {
    fft: Fft,
    win: Vec<f64>,
    win_power: f64,
}

impl WelchPlan {
    /// Builds the plan (Hann window, 50 % overlap) for `nfft`-point
    /// segments.
    ///
    /// # Panics
    ///
    /// Panics if `nfft` is not a power of two.
    pub fn new(nfft: usize) -> Self {
        assert!(nfft.is_power_of_two(), "nfft must be a power of two");
        let win = Window::Hann.coefficients(nfft);
        let win_power: f64 = win.iter().map(|w| w * w).sum();
        WelchPlan {
            fft: Fft::new(nfft),
            win,
            win_power,
        }
    }

    /// Segment size.
    pub fn nfft(&self) -> usize {
        self.fft.len()
    }

    /// Welch PSD estimate of `x`; see [`welch_psd`] for conventions.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is shorter than the plan's `nfft`.
    pub fn psd(&self, x: &[Complex], sample_rate_hz: f64) -> (Vec<f64>, Vec<f64>) {
        let nfft = self.fft.len();
        assert!(
            x.len() >= nfft,
            "signal ({}) shorter than nfft ({nfft})",
            x.len()
        );
        let hop = nfft / 2;
        let mut acc = vec![0.0f64; nfft];
        let mut buf = vec![Complex::ZERO; nfft];
        let mut segments = 0usize;
        let mut start = 0;
        while start + nfft <= x.len() {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = x[start + i] * self.win[i];
            }
            self.fft.forward(&mut buf);
            for (a, b) in acc.iter_mut().zip(buf.iter()) {
                *a += b.norm_sqr();
            }
            segments += 1;
            start += hop;
        }
        let scale = 1.0 / (segments as f64 * self.win_power * sample_rate_hz);
        let psd: Vec<f64> = acc.iter().map(|&p| p * scale).collect();
        (fftshift_freqs(nfft, sample_rate_hz), fftshift(&psd))
    }
}

/// Integrated power (watts under the 1 Ω `mean(|x|²)` convention) of a PSD
/// between `f_lo` and `f_hi` hertz.
pub fn band_power(freqs: &[f64], psd: &[f64], f_lo: f64, f_hi: f64) -> f64 {
    assert_eq!(freqs.len(), psd.len());
    if freqs.len() < 2 {
        return 0.0;
    }
    let df = freqs[1] - freqs[0];
    freqs
        .iter()
        .zip(psd.iter())
        .filter(|(f, _)| **f >= f_lo && **f < f_hi)
        .map(|(_, p)| p * df)
        .sum()
}

/// Adjacent-channel power ratio in dB: power in the adjacent channel
/// (centered at `offset_hz`, width `bw_hz`) relative to the main channel
/// (centered at 0, same width).
pub fn acpr_db(freqs: &[f64], psd: &[f64], offset_hz: f64, bw_hz: f64) -> f64 {
    let main = band_power(freqs, psd, -bw_hz / 2.0, bw_hz / 2.0);
    let adj = band_power(freqs, psd, offset_hz - bw_hz / 2.0, offset_hz + bw_hz / 2.0);
    crate::math::lin_to_db(adj / main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn white_noise_is_flat_and_integrates_to_power() {
        let mut rng = Rng::new(1);
        let fs = 20e6;
        let x: Vec<Complex> = (0..65536).map(|_| rng.complex_gaussian(2.0)).collect();
        let (freqs, psd) = welch_psd(&x, 1024, fs);
        let total = band_power(&freqs, &psd, -fs / 2.0, fs / 2.0);
        assert!((total - 2.0).abs() < 0.1, "total {total}");
        // Flatness: max/min across decade bins within ~3 dB.
        let mx = psd.iter().cloned().fold(f64::MIN, f64::max);
        let mn = psd.iter().cloned().fold(f64::MAX, f64::min);
        assert!(mx / mn < 4.0, "not flat: {mx}/{mn}");
    }

    #[test]
    fn tone_power_recovered() {
        let fs = 80e6;
        let f0 = 10e6;
        let amp = 0.5;
        let x: Vec<Complex> = (0..32768)
            .map(|n| Complex::from_polar(amp, 2.0 * std::f64::consts::PI * f0 * n as f64 / fs))
            .collect();
        let (freqs, psd) = welch_psd(&x, 2048, fs);
        let p = band_power(&freqs, &psd, f0 - 1e6, f0 + 1e6);
        assert!((p - amp * amp).abs() < 0.01 * amp * amp, "p = {p}");
    }

    #[test]
    fn negative_frequency_tone() {
        let fs = 80e6;
        let x: Vec<Complex> = (0..16384)
            .map(|n| Complex::cis(-2.0 * std::f64::consts::PI * 15e6 * n as f64 / fs))
            .collect();
        let (freqs, psd) = welch_psd(&x, 1024, fs);
        let peak = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((freqs[peak] + 15e6).abs() < 0.5e6);
    }

    #[test]
    fn acpr_of_shifted_interferer() {
        let fs = 80e6;
        let mut rng = Rng::new(2);
        // Main channel: lowpass-ish noise; adjacent at +20 MHz, 10 dB lower.
        let x: Vec<Complex> = (0..65536)
            .map(|n| {
                let main = rng.complex_gaussian(1.0);
                let adj = rng.complex_gaussian(0.1)
                    * Complex::cis(2.0 * std::f64::consts::PI * 20e6 * n as f64 / fs);
                // crude band-limit: use raw noise; both occupy full band, but the
                // measurement bands are narrow around each center.
                main + adj
            })
            .collect();
        let (freqs, psd) = welch_psd(&x, 1024, fs);
        // Wideband noise: ACPR measurement over ±8 MHz windows sees
        // (1.0+0.1)/... both present; just check the helper math with a tone.
        let _ = acpr_db(&freqs, &psd, 20e6, 16e6);
        // Direct tone-based check:
        let y: Vec<Complex> = (0..65536)
            .map(|n| {
                Complex::cis(2.0 * std::f64::consts::PI * 1e6 * n as f64 / fs)
                    + Complex::from_polar(0.1, 2.0 * std::f64::consts::PI * 20e6 * n as f64 / fs)
            })
            .collect();
        let (freqs, psd) = welch_psd(&y, 1024, fs);
        let acpr = acpr_db(&freqs, &psd, 20e6, 16e6);
        assert!((acpr + 20.0).abs() < 0.5, "acpr {acpr}");
    }

    #[test]
    #[should_panic]
    fn short_signal_panics() {
        let x = vec![Complex::ZERO; 10];
        let _ = welch_psd(&x, 64, 1.0);
    }

    #[test]
    fn band_power_empty_band_is_zero() {
        let freqs = vec![-1.0, 0.0, 1.0];
        let psd = vec![1.0, 1.0, 1.0];
        assert_eq!(band_power(&freqs, &psd, 5.0, 6.0), 0.0);
    }
}
