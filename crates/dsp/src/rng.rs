//! Deterministic random number generation for reproducible simulations.
//!
//! Monte-Carlo BER experiments must be bit-exactly reproducible across
//! machines and library versions, so the workspace ships its own small
//! generator instead of depending on an external crate: xoshiro256**
//! (Blackman & Vigna, 2018) seeded through SplitMix64, with uniform,
//! Gaussian (polar Box-Muller) and complex-Gaussian output.

use crate::complex::Complex;

/// xoshiro256** pseudo-random generator.
///
/// # Example
///
/// ```
/// use wlan_dsp::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second Box-Muller deviate.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The state is expanded with SplitMix64 so that similar seeds give
    /// uncorrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator (for per-block noise
    /// sources that must not share a stream).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via rejection-free Lemire reduction.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A random bit.
    pub fn bit(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `buf` with random bits.
    pub fn bits(&mut self, buf: &mut [u8]) {
        for b in buf.iter_mut() {
            *b = self.bit() as u8;
        }
    }

    /// Fills `buf` with random bytes.
    pub fn bytes(&mut self, buf: &mut [u8]) {
        for b in buf.iter_mut() {
            *b = (self.next_u64() >> 32) as u8;
        }
    }

    /// Standard-normal deviate (zero mean, unit variance) via the polar
    /// Box-Muller method.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(g) = self.gauss_spare.take() {
            return g;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * k);
                return u * k;
            }
        }
    }

    /// Circularly-symmetric complex Gaussian sample with total variance
    /// `E[|z|²] = variance` (i.e. `variance/2` per real dimension).
    pub fn complex_gaussian(&mut self, variance: f64) -> Complex {
        let sigma = (variance / 2.0).sqrt();
        Complex::new(sigma * self.gaussian(), sigma * self.gaussian())
    }
}

impl Default for Rng {
    fn default() -> Self {
        Rng::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_and_variance() {
        let mut rng = Rng::new(99);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01);
        assert!((var - 1.0 / 12.0).abs() < 0.01);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::new(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let kurt = xs.iter().map(|x| x.powi(4)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01);
        assert!((var - 1.0).abs() < 0.02);
        assert!((kurt - 3.0).abs() < 0.1); // Gaussian kurtosis
    }

    #[test]
    fn complex_gaussian_power() {
        let mut rng = Rng::new(11);
        let n = 100_000;
        let p: f64 = (0..n)
            .map(|_| rng.complex_gaussian(2.5).norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((p - 2.5).abs() < 0.05);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_gives_independent_stream() {
        let mut a = Rng::new(10);
        let mut c = a.fork();
        // Child stream should not track the parent.
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bits_are_roughly_balanced() {
        let mut rng = Rng::new(21);
        let mut buf = vec![0u8; 10_000];
        rng.bits(&mut buf);
        let ones: usize = buf.iter().map(|&b| b as usize).sum();
        assert!(ones > 4700 && ones < 5300);
    }
}
