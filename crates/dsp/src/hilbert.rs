//! FIR Hilbert transformer: builds the analytic signal of a real
//! waveform (used to move between the real-passband and
//! complex-envelope representations without a quadrature LO).

use crate::complex::Complex;
use crate::window::Window;

/// Odd-length type-III FIR Hilbert transformer.
///
/// `analytic(x)[n] ≈ x[n - delay] + j·H{x}[n]` where `H` is the Hilbert
/// transform; a real tone `cos(ωt)` becomes `e^{jω(t - delay)}` for
/// `0 < ω < π` (positive frequencies kept, negative removed).
#[derive(Debug, Clone)]
pub struct Hilbert {
    taps: Vec<f64>,
    delay: usize,
    history: Vec<f64>,
    pos: usize,
}

impl Hilbert {
    /// Creates a transformer with `taps` coefficients (odd, ≥ 7).
    ///
    /// # Panics
    ///
    /// Panics if `taps` is even or below 7.
    pub fn new(taps: usize) -> Self {
        assert!(taps % 2 == 1 && taps >= 7, "need an odd tap count >= 7");
        let m = (taps - 1) / 2;
        let w = Window::Blackman.coefficients(taps - 1);
        let taps_v: Vec<f64> = (0..taps)
            .map(|i| {
                let k = i as i64 - m as i64;
                if k == 0 || k % 2 == 0 {
                    0.0
                } else {
                    // Ideal Hilbert: h[k] = 2/(πk) for odd k.
                    let win = if i < taps - 1 { w[i] } else { w[0] };
                    2.0 / (std::f64::consts::PI * k as f64) * win
                }
            })
            .collect();
        Hilbert {
            taps: taps_v,
            delay: m,
            history: vec![0.0; taps],
            pos: 0,
        }
    }

    /// Group delay in samples of the quadrature path (the in-phase path
    /// is delayed to match).
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Pushes one real sample, returning the analytic-signal sample
    /// (delayed by [`Hilbert::delay`]).
    pub fn push(&mut self, x: f64) -> Complex {
        let n = self.taps.len();
        self.history[self.pos] = x;
        // Quadrature: convolution with the Hilbert kernel.
        let mut q = 0.0;
        let mut idx = self.pos;
        for &t in &self.taps {
            q += self.history[idx] * t;
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        // In-phase: the center-tap (pure delay) path.
        let i_idx = (self.pos + n - self.delay) % n;
        let i = self.history[i_idx];
        self.pos = (self.pos + 1) % n;
        Complex::new(i, q)
    }

    /// Converts a real frame to its analytic signal.
    pub fn process(&mut self, x: &[f64]) -> Vec<Complex> {
        x.iter().map(|&v| self.push(v)).collect()
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        self.history.fill(0.0);
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goertzel::tone_power;

    #[test]
    fn analytic_signal_of_cosine_is_single_sided() {
        let fs = 1.0;
        let f0 = 0.12;
        let mut h = Hilbert::new(63);
        let x: Vec<f64> = (0..8000)
            .map(|n| (2.0 * std::f64::consts::PI * f0 * n as f64).cos())
            .collect();
        let y = h.process(&x);
        let tail = &y[1000..];
        let pos = tone_power(tail, f0, fs);
        let neg = tone_power(tail, -f0, fs);
        // cos = ½e^{+} + ½e^{-}; analytic keeps the + side at full
        // amplitude.
        assert!((pos - 0.5).abs() < 0.02, "positive side {pos}");
        assert!(neg < pos * 1e-3, "negative side not suppressed: {neg}");
    }

    #[test]
    fn works_across_the_band() {
        for f0 in [0.05, 0.2, 0.35, 0.45] {
            let mut h = Hilbert::new(101);
            let x: Vec<f64> = (0..8000)
                .map(|n| (2.0 * std::f64::consts::PI * f0 * n as f64).cos())
                .collect();
            let y = h.process(&x);
            let tail = &y[1000..];
            let pos = tone_power(tail, f0, 1.0);
            let neg = tone_power(tail, -f0, 1.0);
            assert!(neg < pos * 0.01, "f = {f0}: {neg} vs {pos}");
        }
    }

    #[test]
    fn magnitude_is_envelope() {
        // |analytic| of A·cos is ≈ A.
        let mut h = Hilbert::new(63);
        let x: Vec<f64> = (0..4000)
            .map(|n| 2.0 * (2.0 * std::f64::consts::PI * 0.1 * n as f64).cos())
            .collect();
        let y = h.process(&x);
        for v in &y[500..3500] {
            assert!((v.abs() - 2.0).abs() < 0.05, "envelope {}", v.abs());
        }
    }

    #[test]
    fn reset_and_delay() {
        let mut h = Hilbert::new(31);
        assert_eq!(h.delay(), 15);
        h.push(1.0);
        h.reset();
        let y = h.push(0.0);
        assert_eq!(y, Complex::ZERO);
    }

    #[test]
    #[should_panic]
    fn even_taps_panic() {
        let _ = Hilbert::new(32);
    }
}
