//! Correlation utilities used by the 802.11a synchronizer.

use crate::complex::Complex;

/// Sliding cross-correlation of `x` against a reference `ref_seq`
/// (conjugated), normalized by the reference energy.
///
/// Output length is `x.len() - ref_seq.len() + 1`; returns an empty vector
/// if the signal is shorter than the reference.
pub fn cross_correlate(x: &[Complex], ref_seq: &[Complex]) -> Vec<Complex> {
    let mut out = Vec::new();
    cross_correlate_into(x, ref_seq, &mut out);
    out
}

/// [`cross_correlate`] writing into a caller-owned buffer (cleared
/// first), so repeated synchronization runs reuse one allocation.
pub fn cross_correlate_into(x: &[Complex], ref_seq: &[Complex], out: &mut Vec<Complex>) {
    out.clear();
    if x.len() < ref_seq.len() || ref_seq.is_empty() {
        return;
    }
    let energy: f64 = ref_seq.iter().map(|r| r.norm_sqr()).sum();
    let norm = if energy > 0.0 { 1.0 / energy } else { 1.0 };
    out.reserve(x.len() - ref_seq.len() + 1);
    out.extend((0..=x.len() - ref_seq.len()).map(|i| {
        ref_seq
            .iter()
            .enumerate()
            .map(|(k, &r)| x[i + k] * r.conj())
            .sum::<Complex>()
            * norm
    }));
}

/// Delay-and-correlate metric (Schmidl–Cox style) used for detecting
/// periodic preambles: at each index `n` computes
/// `P[n] = Σ_{k<win} x[n+k]·conj(x[n+k+lag])` and the energy
/// `R[n] = Σ_{k<win} |x[n+k+lag]|²`, returning `(P, R)`.
pub fn delay_correlate(x: &[Complex], lag: usize, win: usize) -> (Vec<Complex>, Vec<f64>) {
    let mut p = Vec::new();
    let mut r = Vec::new();
    delay_correlate_into(x, lag, win, &mut p, &mut r);
    (p, r)
}

/// [`delay_correlate`] writing into caller-owned buffers (cleared first),
/// so per-packet detection reuses its metric allocations.
pub fn delay_correlate_into(
    x: &[Complex],
    lag: usize,
    win: usize,
    p: &mut Vec<Complex>,
    r: &mut Vec<f64>,
) {
    p.clear();
    r.clear();
    if x.len() < lag + win {
        return;
    }
    let n_out = x.len() - lag - win + 1;
    p.reserve(n_out);
    r.reserve(n_out);
    // Running sums for O(n) evaluation.
    let mut acc_p = Complex::ZERO;
    let mut acc_r = 0.0f64;
    for k in 0..win {
        acc_p += x[k] * x[k + lag].conj();
        acc_r += x[k + lag].norm_sqr();
    }
    p.push(acc_p);
    r.push(acc_r);
    for n in 1..n_out {
        let drop = n - 1;
        let add = n + win - 1;
        acc_p += x[add] * x[add + lag].conj() - x[drop] * x[drop + lag].conj();
        acc_r += x[add + lag].norm_sqr() - x[drop + lag].norm_sqr();
        p.push(acc_p);
        r.push(acc_r);
    }
}

/// Index of the element with the largest magnitude, or `None` for empty
/// input.
pub fn peak_index(x: &[Complex]) -> Option<usize> {
    x.iter()
        .enumerate()
        .max_by(|a, b| a.1.norm_sqr().partial_cmp(&b.1.norm_sqr()).unwrap())
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn cross_correlation_peaks_at_alignment() {
        let mut rng = Rng::new(1);
        let r: Vec<Complex> = (0..32).map(|_| rng.complex_gaussian(1.0)).collect();
        let mut x = vec![Complex::ZERO; 100];
        for (i, &v) in r.iter().enumerate() {
            x[40 + i] = v;
        }
        let c = cross_correlate(&x, &r);
        assert_eq!(peak_index(&c), Some(40));
        assert!((c[40].abs() - 1.0).abs() < 1e-9); // normalized
    }

    #[test]
    fn cross_correlation_short_signal() {
        let r = vec![Complex::ONE; 8];
        assert!(cross_correlate(&[Complex::ONE; 4], &r).is_empty());
    }

    #[test]
    fn delay_correlate_detects_periodicity() {
        // Periodic signal with period 16.
        let mut rng = Rng::new(2);
        let seed: Vec<Complex> = (0..16).map(|_| rng.complex_gaussian(1.0)).collect();
        let mut x = Vec::new();
        for _ in 0..8 {
            x.extend_from_slice(&seed);
        }
        // Append noise (non-periodic tail).
        x.extend((0..64).map(|_| rng.complex_gaussian(1.0)));
        let (p, r) = delay_correlate(&x, 16, 32);
        // In the periodic region |P|/R ≈ 1.
        let m0 = p[0].abs() / r[0];
        assert!((m0 - 1.0).abs() < 1e-9, "metric {m0}");
        // Deep in the noise-only region the metric is far below 1.
        let tail = p.len() - 1;
        let mt = p[tail].abs() / r[tail];
        assert!(mt < 0.6, "tail metric {mt}");
    }

    #[test]
    fn delay_correlate_running_sum_matches_direct() {
        let mut rng = Rng::new(3);
        let x: Vec<Complex> = (0..100).map(|_| rng.complex_gaussian(1.0)).collect();
        let (p, r) = delay_correlate(&x, 5, 10);
        // Direct evaluation at a few indices.
        for n in [0usize, 7, 42, p.len() - 1] {
            let mut dp = Complex::ZERO;
            let mut dr = 0.0;
            for k in 0..10 {
                dp += x[n + k] * x[n + k + 5].conj();
                dr += x[n + k + 5].norm_sqr();
            }
            assert!((p[n] - dp).abs() < 1e-9);
            assert!((r[n] - dr).abs() < 1e-9);
        }
    }

    #[test]
    fn peak_index_empty() {
        assert_eq!(peak_index(&[]), None);
    }
}
