//! IIR filtering: biquad sections and cascades (direct form II transposed).

use crate::complex::Complex;

/// A second-order IIR section `H(z) = (b0 + b1·z⁻¹ + b2·z⁻²) / (1 + a1·z⁻¹ + a2·z⁻²)`.
///
/// Coefficients are real; complex signals are filtered component-wise,
/// which is exact for real-coefficient transfer functions.
#[derive(Debug, Clone)]
pub struct Biquad {
    /// Numerator coefficients `[b0, b1, b2]`.
    pub b: [f64; 3],
    /// Denominator coefficients `[a1, a2]` (a0 normalized to 1).
    pub a: [f64; 2],
    s1: Complex,
    s2: Complex,
}

impl Biquad {
    /// Creates a section from normalized coefficients.
    pub fn new(b: [f64; 3], a: [f64; 2]) -> Self {
        Biquad {
            b,
            a,
            s1: Complex::ZERO,
            s2: Complex::ZERO,
        }
    }

    /// Identity (pass-through) section.
    pub fn identity() -> Self {
        Biquad::new([1.0, 0.0, 0.0], [0.0, 0.0])
    }

    /// Processes one sample (direct form II transposed).
    #[inline]
    pub fn push(&mut self, x: Complex) -> Complex {
        let y = x * self.b[0] + self.s1;
        self.s1 = x * self.b[1] - y * self.a[0] + self.s2;
        self.s2 = x * self.b[2] - y * self.a[1];
        y
    }

    /// Runs the recurrence over a frame in place with coefficients and
    /// state in registers; the same arithmetic as [`Biquad::push`] per
    /// sample, so bit-identical.
    pub fn process_in_place(&mut self, x: &mut [Complex]) {
        let [b0, b1, b2] = self.b;
        let [a0, a1] = self.a;
        let (mut s1, mut s2) = (self.s1, self.s2);
        for v in x.iter_mut() {
            let xs = *v;
            let y = xs * b0 + s1;
            s1 = xs * b1 - y * a0 + s2;
            s2 = xs * b2 - y * a1;
            *v = y;
        }
        self.s1 = s1;
        self.s2 = s2;
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.s1 = Complex::ZERO;
        self.s2 = Complex::ZERO;
    }

    /// Complex response at normalized frequency `f` (cycles/sample).
    pub fn response(&self, f: f64) -> Complex {
        let z1 = Complex::cis(-2.0 * std::f64::consts::PI * f);
        let z2 = z1 * z1;
        let num = Complex::from_re(self.b[0]) + z1 * self.b[1] + z2 * self.b[2];
        let den = Complex::ONE + z1 * self.a[0] + z2 * self.a[1];
        num / den
    }

    /// `true` when both poles are strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        // Jury criterion for 2nd order: |a2| < 1 and |a1| < 1 + a2.
        self.a[1].abs() < 1.0 && self.a[0].abs() < 1.0 + self.a[1]
    }
}

/// A cascade of biquad sections (an "SOS" filter).
#[derive(Debug, Clone)]
pub struct Sos {
    sections: Vec<Biquad>,
    gain: f64,
}

impl Sos {
    /// Creates a cascade from sections with an overall scalar gain.
    pub fn new(sections: Vec<Biquad>, gain: f64) -> Self {
        Sos { sections, gain }
    }

    /// Identity filter.
    pub fn identity() -> Self {
        Sos::new(Vec::new(), 1.0)
    }

    /// Number of biquad sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// `true` if the cascade has no sections (pure gain).
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Access to the sections.
    pub fn sections(&self) -> &[Biquad] {
        &self.sections
    }

    /// Overall gain factor.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Processes one sample through the whole cascade.
    #[inline]
    pub fn push(&mut self, x: Complex) -> Complex {
        let mut v = x * self.gain;
        for s in self.sections.iter_mut() {
            v = s.push(v);
        }
        v
    }

    /// Filters a frame.
    pub fn process(&mut self, x: &[Complex]) -> Vec<Complex> {
        x.iter().map(|&v| self.push(v)).collect()
    }

    /// Filters a frame in place, section-major: the gain pass and then
    /// each biquad run over the whole frame. Each section is an LTI state
    /// machine fed the previous section's full output sequence, exactly
    /// as in per-sample [`Sos::push`], so the result is bit-identical.
    pub fn process_in_place(&mut self, x: &mut [Complex]) {
        for v in x.iter_mut() {
            *v *= self.gain;
        }
        for s in self.sections.iter_mut() {
            s.process_in_place(x);
        }
    }

    /// Filters a frame of real samples.
    pub fn process_real(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .map(|&v| self.push(Complex::from_re(v)).re)
            .collect()
    }

    /// Clears all section states.
    pub fn reset(&mut self) {
        for s in self.sections.iter_mut() {
            s.reset();
        }
    }

    /// Complex response at normalized frequency `f` (cycles/sample).
    pub fn response(&self, f: f64) -> Complex {
        let mut h = Complex::from_re(self.gain);
        for s in &self.sections {
            h *= s.response(f);
        }
        h
    }

    /// Magnitude response in dB at normalized frequency `f`.
    pub fn response_db(&self, f: f64) -> f64 {
        crate::math::amp_to_db(self.response(f).abs())
    }

    /// `true` when every section is stable.
    pub fn is_stable(&self) -> bool {
        self.sections.iter().all(|s| s.is_stable())
    }

    /// The first `n` samples of the impulse response (resets a clone of
    /// the filter, so the caller's state is untouched).
    pub fn impulse_response(&self, n: usize) -> Vec<f64> {
        let mut f = self.clone();
        f.reset();
        (0..n)
            .map(|i| {
                let x = if i == 0 { Complex::ONE } else { Complex::ZERO };
                f.push(x).re
            })
            .collect()
    }

    /// Numerical group delay in samples at normalized frequency `f`
    /// (cycles/sample), from the phase derivative.
    pub fn group_delay(&self, f: f64) -> f64 {
        let df = 1e-6;
        let p1 = self.response(f - df).arg();
        let p2 = self.response(f + df).arg();
        let mut dp = p2 - p1;
        // Unwrap a single 2π jump.
        if dp > std::f64::consts::PI {
            dp -= 2.0 * std::f64::consts::PI;
        } else if dp < -std::f64::consts::PI {
            dp += 2.0 * std::f64::consts::PI;
        }
        -dp / (2.0 * std::f64::consts::PI * 2.0 * df)
    }
}

/// Single-pole DC-blocking highpass `H(z) = (1 - z⁻¹)/(1 - r·z⁻¹)`.
///
/// `r` close to 1 gives a very low cutoff: `f_c ≈ (1-r)/π` cycles/sample.
#[derive(Debug, Clone)]
pub struct DcBlocker {
    r: f64,
    x1: Complex,
    y1: Complex,
}

impl DcBlocker {
    /// Creates a DC blocker with pole radius `r` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside `(0, 1)`.
    pub fn new(r: f64) -> Self {
        assert!(
            r > 0.0 && r < 1.0,
            "DC blocker pole must be in (0,1), got {r}"
        );
        DcBlocker {
            r,
            x1: Complex::ZERO,
            y1: Complex::ZERO,
        }
    }

    /// Creates a blocker with -3 dB cutoff `fc` (Hz) at sample rate `fs`.
    pub fn with_cutoff(fc: f64, fs: f64) -> Self {
        let r = (1.0 - 2.0 * std::f64::consts::PI * fc / fs).clamp(0.0001, 0.999_999);
        DcBlocker::new(r)
    }

    /// Processes one sample.
    #[inline]
    pub fn push(&mut self, x: Complex) -> Complex {
        let y = x - self.x1 + self.y1 * self.r;
        self.x1 = x;
        self.y1 = y;
        y
    }

    /// Filters a frame.
    pub fn process(&mut self, x: &[Complex]) -> Vec<Complex> {
        x.iter().map(|&v| self.push(v)).collect()
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        self.x1 = Complex::ZERO;
        self.y1 = Complex::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_biquad_passes_through() {
        let mut b = Biquad::identity();
        for i in 0..10 {
            let x = Complex::new(i as f64, -(i as f64));
            assert_eq!(b.push(x), x);
        }
    }

    #[test]
    fn one_pole_lowpass_smooths() {
        // y[n] = 0.1 x[n] + 0.9 y[n-1]
        let mut b = Biquad::new([0.1, 0.0, 0.0], [-0.9, 0.0]);
        assert!(b.is_stable());
        let mut y = Complex::ZERO;
        for _ in 0..500 {
            y = b.push(Complex::ONE);
        }
        assert!((y.re - 1.0).abs() < 1e-6); // unit DC gain: 0.1/(1-0.9)
    }

    #[test]
    fn response_matches_time_domain_dc() {
        let mut b = Biquad::new([0.2, 0.3, 0.1], [-0.4, 0.2]);
        let h0 = b.response(0.0);
        let mut y = Complex::ZERO;
        for _ in 0..2000 {
            y = b.push(Complex::ONE);
        }
        assert!((y.re - h0.re).abs() < 1e-9);
    }

    #[test]
    fn stability_criterion() {
        assert!(Biquad::new([1.0, 0.0, 0.0], [0.0, 0.99]).is_stable());
        assert!(!Biquad::new([1.0, 0.0, 0.0], [0.0, 1.01]).is_stable());
        assert!(!Biquad::new([1.0, 0.0, 0.0], [-2.05, 1.0]).is_stable());
    }

    #[test]
    fn sos_cascade_multiplies_responses() {
        let s1 = Biquad::new([0.5, 0.0, 0.0], [-0.5, 0.0]);
        let s2 = Biquad::new([0.3, 0.1, 0.0], [0.2, 0.0]);
        let sos = Sos::new(vec![s1.clone(), s2.clone()], 2.0);
        let f = 0.13;
        let expect = s1.response(f) * s2.response(f) * 2.0;
        assert!((sos.response(f) - expect).abs() < 1e-12);
    }

    #[test]
    fn sos_identity() {
        let mut sos = Sos::identity();
        let x = Complex::new(1.0, 2.0);
        assert_eq!(sos.push(x), x);
        assert!(sos.is_empty());
        assert!(sos.is_stable());
    }

    #[test]
    fn sos_reset_and_real_processing() {
        let mut sos = Sos::new(vec![Biquad::new([1.0, 1.0, 0.0], [0.0, 0.0])], 1.0);
        let y1 = sos.process_real(&[1.0, 0.0, 0.0]);
        sos.reset();
        let y2 = sos.process_real(&[1.0, 0.0, 0.0]);
        assert_eq!(y1, y2);
        assert_eq!(y1, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn impulse_response_sums_to_dc_gain() {
        let mut f = crate::design::butterworth(3, crate::design::FilterKind::Lowpass, 1e6, 20e6);
        let h = f.impulse_response(4000);
        let sum: f64 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "impulse sum {sum}");
        // Caller state untouched: pushing after the call starts fresh.
        let y = f.push(Complex::ONE);
        assert!((y.re - h[0]).abs() < 1e-12);
    }

    #[test]
    fn group_delay_positive_in_passband() {
        let f = crate::design::chebyshev1(5, 0.5, crate::design::FilterKind::Lowpass, 8e6, 80e6);
        let gd_mid = f.group_delay(2e6 / 80e6);
        let gd_edge = f.group_delay(7.8e6 / 80e6);
        assert!(gd_mid > 0.5, "mid-band delay {gd_mid}");
        // Chebyshev group delay peaks near the band edge.
        assert!(gd_edge > gd_mid, "edge {gd_edge} vs mid {gd_mid}");
    }

    #[test]
    fn dc_blocker_removes_dc_keeps_ac() {
        let mut blk = DcBlocker::new(0.995);
        let mut last = Complex::ZERO;
        // Constant input decays to zero.
        for _ in 0..20_000 {
            last = blk.push(Complex::ONE);
        }
        assert!(last.abs() < 1e-3);
        // A fast tone passes nearly unchanged.
        blk.reset();
        let mut peak: f64 = 0.0;
        for n in 0..2000 {
            let x = Complex::cis(2.0 * std::f64::consts::PI * 0.25 * n as f64);
            let y = blk.push(x);
            if n > 100 {
                peak = peak.max(y.abs());
            }
        }
        assert!((peak - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic]
    fn dc_blocker_bad_pole_panics() {
        let _ = DcBlocker::new(1.5);
    }

    #[test]
    fn dc_blocker_cutoff_constructor() {
        let mut blk = DcBlocker::with_cutoff(100e3, 20e6);
        // At f = fc the attenuation should be near 3 dB.
        let fc_norm = 100e3 / 20e6;
        let mut sum = 0.0f64;
        let n = 40_000;
        for i in 0..n {
            let x = Complex::cis(2.0 * std::f64::consts::PI * fc_norm * i as f64);
            let y = blk.push(x);
            if i > n / 2 {
                sum += y.norm_sqr();
            }
        }
        let p = sum / (n / 2 - 1) as f64;
        let att_db = -crate::math::lin_to_db(p);
        assert!(att_db > 1.0 && att_db < 5.0, "attenuation {att_db} dB");
    }
}
