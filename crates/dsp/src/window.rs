//! Window functions for spectral analysis and FIR design.

use crate::math::bessel_i0;

/// Window shape selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Window {
    /// Rectangular (no taper).
    Rectangular,
    /// Hann (raised cosine).
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman (three-term).
    Blackman,
    /// Kaiser with shape parameter β.
    Kaiser(f64),
}

impl Window {
    /// Evaluates the window coefficients for length `n`.
    ///
    /// Uses the *periodic* convention denominator `n` for spectral
    /// estimation friendliness when `n > 1`; a length-1 window is `[1.0]`.
    ///
    /// ```
    /// use wlan_dsp::window::Window;
    /// let w = Window::Hann.coefficients(8);
    /// assert_eq!(w.len(), 8);
    /// assert!(w[0] < 1e-12); // Hann starts at zero
    /// ```
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let nn = n as f64;
        (0..n)
            .map(|i| {
                let x = i as f64 / nn;
                let two_pi_x = 2.0 * std::f64::consts::PI * x;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * two_pi_x.cos(),
                    Window::Hamming => 0.54 - 0.46 * two_pi_x.cos(),
                    Window::Blackman => 0.42 - 0.5 * two_pi_x.cos() + 0.08 * (2.0 * two_pi_x).cos(),
                    Window::Kaiser(beta) => {
                        // Symmetric Kaiser over [0, n-1].
                        let m = (n - 1) as f64;
                        let r = 2.0 * i as f64 / m - 1.0;
                        bessel_i0(beta * (1.0 - r * r).max(0.0).sqrt()) / bessel_i0(beta)
                    }
                }
            })
            .collect()
    }

    /// Coherent gain: mean of the coefficients (amplitude scaling of a
    /// windowed tone).
    pub fn coherent_gain(self, n: usize) -> f64 {
        let w = self.coefficients(n);
        if w.is_empty() {
            return 0.0;
        }
        w.iter().sum::<f64>() / n as f64
    }

    /// Noise-equivalent power gain: mean of the squared coefficients.
    pub fn power_gain(self, n: usize) -> f64 {
        let w = self.coefficients(n);
        if w.is_empty() {
            return 0.0;
        }
        w.iter().map(|v| v * v).sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_bounds() {
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::Kaiser(8.0),
        ] {
            let c = w.coefficients(33);
            assert_eq!(c.len(), 33);
            assert!(
                c.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)),
                "{w:?}"
            );
        }
    }

    #[test]
    fn degenerate_lengths() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Hann.coefficients(1), vec![1.0]);
    }

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(16)
            .iter()
            .all(|&v| v == 1.0));
        assert_eq!(Window::Rectangular.coherent_gain(16), 1.0);
        assert_eq!(Window::Rectangular.power_gain(16), 1.0);
    }

    #[test]
    fn hann_peak_and_symmetry() {
        let n = 64;
        let c = Window::Hann.coefficients(n);
        // Periodic Hann: c[i] == c[n-i] for i>0.
        for i in 1..n {
            assert!((c[i] - c[n - i]).abs() < 1e-12);
        }
        assert!((c[n / 2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_coherent_gain_is_half() {
        assert!((Window::Hann.coherent_gain(1024) - 0.5).abs() < 1e-3);
        assert!((Window::Hann.power_gain(1024) - 0.375).abs() < 1e-3);
    }

    #[test]
    fn hamming_endpoint() {
        let c = Window::Hamming.coefficients(64);
        assert!((c[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn kaiser_beta_zero_is_rectangular() {
        let c = Window::Kaiser(0.0).coefficients(16);
        assert!(c.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn kaiser_tapers_with_beta() {
        let a = Window::Kaiser(2.0).coefficients(65);
        let b = Window::Kaiser(10.0).coefficients(65);
        // Larger beta → smaller edges.
        assert!(b[0] < a[0]);
        assert!((a[32] - 1.0).abs() < 1e-9 && (b[32] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blackman_near_zero_edges() {
        let c = Window::Blackman.coefficients(128);
        assert!(c[0].abs() < 1e-9);
    }
}
