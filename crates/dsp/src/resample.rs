//! Integer-factor resampling with polyphase anti-alias/anti-image FIR
//! filtering.
//!
//! The paper's system testbench runs the DSP PHY at 20 Msps and the RF
//! subsystem at an oversampled rate so the +20 MHz adjacent channel is
//! representable ("the baseband signal was over-sampled to fulfill the
//! sampling theorem", §4.1). These converters provide that rate change.

use crate::complex::Complex;
use crate::fir::{lowpass, Fir};
use crate::window::Window;

/// Polyphase interpolator (upsampler) by an integer factor.
///
/// Zero-stuffs by `factor` and applies an anti-imaging lowpass with a
/// passband gain of `factor` so signal amplitude (and hence power of the
/// in-band component) is preserved.
///
/// # Example
///
/// ```
/// use wlan_dsp::{Complex, resample::Upsampler};
/// let mut up = Upsampler::new(4, 64);
/// let y = up.process(&[Complex::ONE; 16]);
/// assert_eq!(y.len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct Upsampler {
    factor: usize,
    /// Polyphase branches: branch `p` holds taps `h[p], h[p+L], ...`.
    branches: Vec<Vec<f64>>,
    history: Vec<Complex>,
    pos: usize,
}

impl Upsampler {
    /// Creates an upsampler by `factor` with `taps_per_branch` taps in
    /// each polyphase branch (total FIR length `factor·taps_per_branch`).
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1` or `taps_per_branch == 0`.
    pub fn new(factor: usize, taps_per_branch: usize) -> Self {
        assert!(factor >= 1, "factor must be >= 1");
        assert!(taps_per_branch > 0, "need at least one tap per branch");
        if factor == 1 {
            return Upsampler {
                factor,
                branches: vec![vec![1.0]],
                history: vec![Complex::ZERO],
                pos: 0,
            };
        }
        let total = factor * taps_per_branch;
        // Cutoff at the original Nyquist (0.5/factor of the new rate) with
        // a little margin; Kaiser beta 8 gives ~ -80 dB images.
        let h = lowpass(0.5 / factor as f64 * 0.92, total, Window::Kaiser(8.0));
        let branches = (0..factor)
            .map(|p| {
                (0..taps_per_branch)
                    .map(|k| h[p + k * factor] * factor as f64)
                    .collect()
            })
            .collect();
        Upsampler {
            factor,
            branches,
            history: vec![Complex::ZERO; taps_per_branch],
            pos: 0,
        }
    }

    /// Upsampling factor.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Resets the filter state.
    pub fn reset(&mut self) {
        self.history.fill(Complex::ZERO);
        self.pos = 0;
    }

    /// Converts a frame of input samples to `factor·len` output samples.
    pub fn process(&mut self, x: &[Complex]) -> Vec<Complex> {
        let mut out = Vec::with_capacity(x.len() * self.factor);
        self.process_into(x, &mut out);
        out
    }

    /// [`Upsampler::process`] into a caller-owned buffer (cleared first);
    /// the only heap traffic is capacity growth.
    pub fn process_into(&mut self, x: &[Complex], out: &mut Vec<Complex>) {
        out.clear();
        if self.factor == 1 {
            out.extend_from_slice(x);
            return;
        }
        let tb = self.history.len();
        out.reserve(x.len() * self.factor);
        for &v in x {
            self.history[self.pos] = v;
            for branch in &self.branches {
                let mut acc = Complex::ZERO;
                let mut idx = self.pos;
                for &t in branch {
                    acc += self.history[idx] * t;
                    idx = if idx == 0 { tb - 1 } else { idx - 1 };
                }
                out.push(acc);
            }
            self.pos = (self.pos + 1) % tb;
        }
    }
}

/// Decimator by an integer factor with anti-alias lowpass filtering.
#[derive(Debug, Clone)]
pub struct Downsampler {
    factor: usize,
    fir: Fir,
    phase: usize,
}

impl Downsampler {
    /// Creates a decimator by `factor` with a `taps`-long anti-alias FIR.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1` or `taps == 0`.
    pub fn new(factor: usize, taps: usize) -> Self {
        assert!(factor >= 1, "factor must be >= 1");
        assert!(taps > 0, "need at least one tap");
        let fir = if factor == 1 {
            Fir::new(vec![1.0])
        } else {
            Fir::new(lowpass(
                0.5 / factor as f64 * 0.92,
                taps,
                Window::Kaiser(8.0),
            ))
        };
        Downsampler {
            factor,
            fir,
            phase: 0,
        }
    }

    /// Decimation factor.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Resets the filter state.
    pub fn reset(&mut self) {
        self.fir.reset();
        self.phase = 0;
    }

    /// Filters and keeps every `factor`-th sample.
    pub fn process(&mut self, x: &[Complex]) -> Vec<Complex> {
        let mut out = Vec::with_capacity(x.len() / self.factor + 1);
        for &v in x {
            let y = self.fir.push(v);
            if self.phase == 0 {
                out.push(y);
            }
            self.phase = (self.phase + 1) % self.factor;
        }
        out
    }
}

/// Frequency shifter: multiplies by `e^{j2π·f·n/fs}` with persistent phase.
#[derive(Debug, Clone)]
pub struct FrequencyShifter {
    phase_inc: f64,
    phase: f64,
}

impl FrequencyShifter {
    /// Creates a shifter moving the spectrum by `shift_hz` at sample rate
    /// `sample_rate_hz`.
    pub fn new(shift_hz: f64, sample_rate_hz: f64) -> Self {
        FrequencyShifter {
            phase_inc: 2.0 * std::f64::consts::PI * shift_hz / sample_rate_hz,
            phase: 0.0,
        }
    }

    /// Shifts one sample.
    #[inline]
    pub fn push(&mut self, x: Complex) -> Complex {
        let y = x * Complex::cis(self.phase);
        self.phase += self.phase_inc;
        if self.phase.abs() > 1e12 {
            self.phase %= 2.0 * std::f64::consts::PI;
        }
        y
    }

    /// Shifts a frame.
    pub fn process(&mut self, x: &[Complex]) -> Vec<Complex> {
        x.iter().map(|&v| self.push(v)).collect()
    }

    /// Shifts a frame in place.
    pub fn process_in_place(&mut self, x: &mut [Complex]) {
        for v in x.iter_mut() {
            *v = self.push(*v);
        }
    }

    /// Resets the oscillator phase.
    pub fn reset(&mut self) {
        self.phase = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::mean_power;
    use crate::spectrum::welch_psd;

    fn tone(freq_norm: f64, n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * freq_norm * i as f64))
            .collect()
    }

    #[test]
    fn upsample_length_and_power() {
        let mut up = Upsampler::new(4, 32);
        let x = tone(0.05, 512);
        let y = up.process(&x);
        assert_eq!(y.len(), 2048);
        // Skip the filter transient, then power should be ~1.
        let p = mean_power(&y[512..]);
        assert!((p - 1.0).abs() < 0.05, "power {p}");
    }

    #[test]
    fn upsample_tone_stays_at_same_absolute_freq() {
        // 0.1 cycles/sample at fs becomes 0.025 at 4fs.
        let mut up = Upsampler::new(4, 48);
        let x = tone(0.1, 2048);
        let y = up.process(&x);
        let (freqs, psd) = welch_psd(&y[1024..], 512, 4.0);
        let peak = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((freqs[peak] - 0.1).abs() < 0.02, "peak at {}", freqs[peak]);
    }

    #[test]
    fn upsample_images_suppressed() {
        let mut up = Upsampler::new(4, 48);
        let x = tone(0.1, 4096);
        let y = up.process(&x);
        let (freqs, psd) = welch_psd(&y[1024..], 1024, 4.0);
        let sig: f64 = freqs
            .iter()
            .zip(psd.iter())
            .filter(|(f, _)| (**f - 0.1).abs() < 0.05)
            .map(|(_, p)| *p)
            .sum();
        // Image would sit at 4·0.025 + k — check around 0.9 & 1.1 region (±(1-0.1)).
        let img: f64 = freqs
            .iter()
            .zip(psd.iter())
            .filter(|(f, _)| (f.abs() - 0.9).abs() < 0.05 || (f.abs() - 1.1).abs() < 0.05)
            .map(|(_, p)| *p)
            .sum();
        assert!(img < sig * 1e-5, "images not suppressed: {img} vs {sig}");
    }

    #[test]
    fn factor_one_is_passthrough() {
        let mut up = Upsampler::new(1, 8);
        let mut dn = Downsampler::new(1, 8);
        let x = tone(0.3, 32);
        assert_eq!(up.process(&x), x);
        assert_eq!(dn.process(&x), x);
    }

    #[test]
    fn downsample_length_and_tone() {
        let mut dn = Downsampler::new(4, 128);
        let x = tone(0.02, 4096);
        let y = dn.process(&x);
        assert_eq!(y.len(), 1024);
        // Tone at 0.02 → 0.08 after decimation; power preserved.
        let p = mean_power(&y[256..]);
        assert!((p - 1.0).abs() < 0.05, "power {p}");
    }

    #[test]
    fn downsample_rejects_out_of_band() {
        let mut dn = Downsampler::new(4, 128);
        // Tone at 0.3 cycles/sample is beyond 0.125 → must be filtered out.
        let x = tone(0.3, 4096);
        let y = dn.process(&x);
        let p = mean_power(&y[256..]);
        assert!(p < 1e-6, "aliased power {p}");
    }

    #[test]
    fn up_down_roundtrip() {
        let mut up = Upsampler::new(4, 48);
        let mut dn = Downsampler::new(4, 192);
        let x = tone(0.05, 2048);
        let y = dn.process(&up.process(&x));
        assert_eq!(y.len(), x.len());
        // After transients the roundtrip is a pure delay; compare power.
        let p = mean_power(&y[512..]);
        assert!((p - 1.0).abs() < 0.05, "power {p}");
    }

    #[test]
    fn frequency_shifter_moves_tone() {
        let mut sh = FrequencyShifter::new(0.2, 1.0);
        let x = tone(0.1, 4096);
        let y = sh.process(&x);
        let (freqs, psd) = welch_psd(&y, 1024, 1.0);
        let peak = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((freqs[peak] - 0.3).abs() < 0.01, "peak at {}", freqs[peak]);
    }

    #[test]
    fn frequency_shifter_preserves_power() {
        let mut sh = FrequencyShifter::new(1e6, 80e6);
        let x = tone(0.07, 1000);
        let y = sh.process(&x);
        assert!((mean_power(&y) - mean_power(&x)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_factor_panics() {
        let _ = Upsampler::new(0, 8);
    }
}
