//! Decibel conversions and small special functions.
//!
//! All power quantities in the workspace use the 1 Ω convention documented
//! in `DESIGN.md`: a complex envelope tone of amplitude `A` carries
//! `A²/2` watts.
//!
//! The dB↔linear conversions are thin `f64` wrappers over the blessed
//! implementations in [`wlan_units`] — the single home of the raw
//! `10^(x/10)`-style expressions gated by the `wlan-lint units` pass.

use wlan_units::{Db, Dbm, PowerW};

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Standard noise reference temperature in kelvin (IEEE T₀).
pub const T0_KELVIN: f64 = 290.0;

/// Converts a power ratio to decibels: `10·log10(ratio)`.
///
/// ```
/// use wlan_dsp::math::lin_to_db;
/// assert!((lin_to_db(100.0) - 20.0).abs() < 1e-12);
/// ```
#[inline]
pub fn lin_to_db(ratio: f64) -> f64 {
    Db::from_linear(ratio).0
}

/// Converts decibels to a power ratio: `10^(db/10)`.
#[inline]
pub fn db_to_lin(db: f64) -> f64 {
    Db(db).to_linear()
}

/// Converts watts to dBm.
///
/// ```
/// use wlan_dsp::math::watts_to_dbm;
/// assert!((watts_to_dbm(1e-3) - 0.0).abs() < 1e-12);
/// assert!((watts_to_dbm(1.0) - 30.0).abs() < 1e-12);
/// ```
#[inline]
pub fn watts_to_dbm(watts: f64) -> f64 {
    Dbm::from_watts(PowerW(watts)).0
}

/// Converts dBm to watts.
#[inline]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    Dbm(dbm).to_watts().0
}

/// Converts a voltage (amplitude) ratio to decibels: `20·log10(ratio)`.
#[inline]
pub fn amp_to_db(ratio: f64) -> f64 {
    Db::from_amplitude_ratio(ratio).0
}

/// Converts decibels to a voltage (amplitude) ratio: `10^(db/20)`.
#[inline]
pub fn db_to_amp(db: f64) -> f64 {
    Db(db).to_amplitude_ratio()
}

/// Normalized sinc function `sin(πx)/(πx)` with `sinc(0) = 1`.
///
/// ```
/// use wlan_dsp::math::sinc;
/// assert_eq!(sinc(0.0), 1.0);
/// assert!(sinc(1.0).abs() < 1e-12);
/// ```
pub fn sinc(x: f64) -> f64 {
    if x == 0.0 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

/// Modified Bessel function of the first kind, order zero, `I₀(x)`.
///
/// Power-series evaluation, accurate to better than 1e-12 for the `|x| ≤ 20`
/// arguments used in Kaiser window design.
pub fn bessel_i0(x: f64) -> f64 {
    let half_x = x / 2.0;
    let mut term = 1.0;
    let mut sum = 1.0;
    for k in 1..64 {
        term *= (half_x / k as f64) * (half_x / k as f64);
        sum += term;
        if term < sum * 1e-16 {
            break;
        }
    }
    sum
}

/// Complementary error function `erfc(x)`.
///
/// Uses the numerically stable rational approximation from Numerical
/// Recipes (fractional error < 1.2e-7 everywhere), adequate for BER
/// theory curves.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Gaussian tail probability `Q(x) = 0.5·erfc(x/√2)`.
///
/// ```
/// use wlan_dsp::math::q_function;
/// assert!((q_function(0.0) - 0.5).abs() < 1e-7);
/// ```
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Smallest power of two `>= n`.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn next_pow2(n: usize) -> usize {
    assert!(n > 0, "next_pow2 of zero");
    n.next_power_of_two()
}

/// Wraps an angle to the interval `(-π, π]`.
pub fn wrap_phase(theta: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut t = theta % two_pi;
    if t > std::f64::consts::PI {
        t -= two_pi;
    } else if t <= -std::f64::consts::PI {
        t += two_pi;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0, 33.3] {
            assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-9);
            assert!((amp_to_db(db_to_amp(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn dbm_roundtrip() {
        for dbm in [-88.0, -23.0, 0.0, 16.0] {
            assert!((watts_to_dbm(dbm_to_watts(dbm)) - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn three_db_is_factor_two() {
        assert!((db_to_lin(3.0103) - 2.0).abs() < 1e-3);
        assert!((db_to_amp(6.0206) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn sinc_zeros_at_integers() {
        for k in 1..6 {
            assert!(sinc(k as f64).abs() < 1e-12);
            assert!(sinc(-(k as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn bessel_i0_reference_values() {
        // Abramowitz & Stegun table values.
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-14);
        assert!((bessel_i0(1.0) - 1.2660658777520084).abs() < 1e-12);
        assert!((bessel_i0(2.0) - 2.2795853023360673).abs() < 1e-12);
        assert!((bessel_i0(5.0) - 27.239871823604442).abs() < 1e-9);
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.15729920705028513).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.8427007929497148).abs() < 1e-6);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn q_function_symmetry() {
        for x in [0.5, 1.0, 2.0] {
            assert!((q_function(x) + q_function(-x) - 1.0).abs() < 1e-6);
        }
        // Q(3) ≈ 1.3499e-3
        assert!((q_function(3.0) - 1.3499e-3).abs() < 1e-6);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
    }

    #[test]
    #[should_panic]
    fn next_pow2_zero_panics() {
        next_pow2(0);
    }

    #[test]
    fn wrap_phase_range() {
        use std::f64::consts::PI;
        assert!((wrap_phase(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_phase(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_phase(0.1) - 0.1).abs() < 1e-15);
        for k in -10..10 {
            let w = wrap_phase(k as f64 * 1.7);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
        }
    }

    #[test]
    fn thermal_noise_floor_sanity() {
        // kT0 in dBm/Hz should be about -174 dBm/Hz.
        let kt = BOLTZMANN * T0_KELVIN;
        assert!((watts_to_dbm(kt) - (-173.98)).abs() < 0.05);
    }
}
