//! FIR filters: windowed-sinc design and streaming application.

use crate::complex::Complex;
use crate::math::sinc;
use crate::window::Window;

/// Designs a linear-phase lowpass FIR by the windowed-sinc method.
///
/// `cutoff` is the -6 dB edge as a fraction of the sample rate
/// (`0 < cutoff < 0.5`); `taps` is the filter length. The impulse
/// response is normalized for unit DC gain.
///
/// # Panics
///
/// Panics if `cutoff` is outside `(0, 0.5)` or `taps == 0`.
///
/// ```
/// use wlan_dsp::fir::{lowpass, Fir};
/// let h = lowpass(0.25, 63, wlan_dsp::window::Window::Hamming);
/// assert_eq!(h.len(), 63);
/// let dc: f64 = h.iter().sum();
/// assert!((dc - 1.0).abs() < 1e-9);
/// ```
pub fn lowpass(cutoff: f64, taps: usize, window: Window) -> Vec<f64> {
    assert!(
        cutoff > 0.0 && cutoff < 0.5,
        "cutoff must be in (0, 0.5), got {cutoff}"
    );
    assert!(taps > 0, "taps must be positive");
    let w = window_symmetric(window, taps);
    let mid = (taps - 1) as f64 / 2.0;
    let mut h: Vec<f64> = (0..taps)
        .map(|i| {
            let t = i as f64 - mid;
            2.0 * cutoff * sinc(2.0 * cutoff * t) * w[i]
        })
        .collect();
    let dc: f64 = h.iter().sum();
    for v in h.iter_mut() {
        *v /= dc;
    }
    h
}

/// Designs a highpass FIR by spectral inversion of [`lowpass`].
///
/// `taps` must be odd so the spectral inversion has a well-defined
/// center tap.
///
/// # Panics
///
/// Panics on even `taps` or an out-of-range cutoff.
pub fn highpass(cutoff: f64, taps: usize, window: Window) -> Vec<f64> {
    assert!(taps % 2 == 1, "highpass design requires an odd tap count");
    let mut h: Vec<f64> = lowpass(cutoff, taps, window).iter().map(|v| -v).collect();
    h[(taps - 1) / 2] += 1.0;
    h
}

/// Symmetric window evaluation for FIR design (denominator `n-1`).
fn window_symmetric(window: Window, n: usize) -> Vec<f64> {
    if n == 1 {
        return vec![1.0];
    }
    // Reuse the periodic evaluator on n-1 then append the mirror point —
    // except Kaiser which is already symmetric in `coefficients`.
    match window {
        Window::Kaiser(_) => window.coefficients(n),
        _ => {
            let mut w = window.coefficients(n - 1);
            w.push(w[0]);
            // periodic(n-1) over 0..n-1 equals symmetric(n) over 0..n-1
            w
        }
    }
}

/// Streaming FIR filter over complex samples (real coefficients).
///
/// Keeps state between calls so long signals can be filtered in frames.
#[derive(Debug, Clone)]
pub struct Fir {
    taps: Vec<f64>,
    state: Vec<Complex>,
    pos: usize,
}

impl Fir {
    /// Creates a filter from its impulse response.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        let n = taps.len();
        Fir {
            taps,
            state: vec![Complex::ZERO; n],
            pos: 0,
        }
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// `true` if the filter has no taps (never; construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Group delay in samples (linear-phase assumption).
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Filter coefficients.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Resets the internal delay line to zero.
    pub fn reset(&mut self) {
        self.state.fill(Complex::ZERO);
        self.pos = 0;
    }

    /// Processes one sample.
    #[inline]
    pub fn push(&mut self, x: Complex) -> Complex {
        let n = self.taps.len();
        self.state[self.pos] = x;
        let mut acc = Complex::ZERO;
        let mut idx = self.pos;
        for &t in &self.taps {
            acc += self.state[idx] * t;
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        self.pos = (self.pos + 1) % n;
        acc
    }

    /// Filters a frame, returning the output frame of equal length.
    pub fn process(&mut self, x: &[Complex]) -> Vec<Complex> {
        x.iter().map(|&v| self.push(v)).collect()
    }

    /// Complex frequency response at normalized frequency `f` (cycles per
    /// sample, `-0.5 ≤ f ≤ 0.5`).
    pub fn response(&self, f: f64) -> Complex {
        self.taps
            .iter()
            .enumerate()
            .map(|(n, &t)| Complex::cis(-2.0 * std::f64::consts::PI * f * n as f64) * t)
            .sum()
    }
}

/// Convolves a signal with an impulse response ("full" length `x+h-1`).
pub fn convolve(x: &[Complex], h: &[f64]) -> Vec<Complex> {
    if x.is_empty() || h.is_empty() {
        return Vec::new();
    }
    let mut y = vec![Complex::ZERO; x.len() + h.len() - 1];
    for (i, &xi) in x.iter().enumerate() {
        for (j, &hj) in h.iter().enumerate() {
            y[i + j] += xi * hj;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::amp_to_db;

    #[test]
    fn lowpass_dc_gain_unity() {
        for taps in [21, 64, 101] {
            let h = lowpass(0.2, taps, Window::Hamming);
            assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lowpass_passband_and_stopband() {
        let f = Fir::new(lowpass(0.125, 101, Window::Kaiser(8.0)));
        // Passband at 0.05, stopband at 0.25
        let pass = amp_to_db(f.response(0.05).abs());
        let stop = amp_to_db(f.response(0.25).abs());
        assert!(pass.abs() < 0.1, "passband ripple {pass}");
        assert!(stop < -60.0, "stopband {stop}");
    }

    #[test]
    fn highpass_blocks_dc() {
        let f = Fir::new(highpass(0.1, 101, Window::Hamming));
        assert!(f.response(0.0).abs() < 1e-6);
        assert!((f.response(0.4).abs() - 1.0).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn highpass_even_taps_panics() {
        let _ = highpass(0.1, 100, Window::Hamming);
    }

    #[test]
    #[should_panic]
    fn lowpass_bad_cutoff_panics() {
        let _ = lowpass(0.6, 31, Window::Hamming);
    }

    #[test]
    fn impulse_response_identity() {
        let taps = vec![0.5, 0.25, 0.25];
        let mut f = Fir::new(taps.clone());
        let mut x = vec![Complex::ZERO; 5];
        x[0] = Complex::ONE;
        let y = f.process(&x);
        for (i, &t) in taps.iter().enumerate() {
            assert!((y[i].re - t).abs() < 1e-15);
        }
        assert!(y[3].abs() < 1e-15);
    }

    #[test]
    fn streaming_equals_batch() {
        let taps = lowpass(0.3, 17, Window::Hann);
        let x: Vec<Complex> = (0..50)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let mut f1 = Fir::new(taps.clone());
        let batch = f1.process(&x);
        let mut f2 = Fir::new(taps);
        let mut streamed = Vec::new();
        for chunk in x.chunks(7) {
            streamed.extend(f2.process(chunk));
        }
        for (a, b) in batch.iter().zip(streamed.iter()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut f = Fir::new(vec![1.0, 1.0]);
        f.push(Complex::ONE);
        f.reset();
        assert_eq!(f.push(Complex::ZERO), Complex::ZERO);
    }

    #[test]
    fn convolve_known_result() {
        let x = vec![Complex::from_re(1.0), Complex::from_re(2.0)];
        let h = [1.0, 1.0, 1.0];
        let y = convolve(&x, &h);
        let expect = [1.0, 3.0, 3.0, 2.0];
        assert_eq!(y.len(), 4);
        for (a, e) in y.iter().zip(expect.iter()) {
            assert!((a.re - e).abs() < 1e-15);
        }
        assert!(convolve(&[], &h).is_empty());
    }

    #[test]
    fn linear_phase_group_delay() {
        let taps = lowpass(0.2, 41, Window::Hamming);
        let f = Fir::new(taps);
        assert_eq!(f.group_delay(), 20.0);
        // Check phase slope matches group delay at small f.
        let df = 0.001;
        let p1 = f.response(0.01).arg();
        let p2 = f.response(0.01 + df).arg();
        let gd = -(p2 - p1) / (2.0 * std::f64::consts::PI * df);
        assert!((gd - 20.0).abs() < 0.5);
    }
}
