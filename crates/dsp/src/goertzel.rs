//! Goertzel single-bin DFT for tone power measurements.
//!
//! Used by the SpectreRF-style RF characterization harnesses (two-tone
//! IM3, compression) where only a handful of known frequencies matter.

use crate::complex::Complex;

/// Measures the complex amplitude of the tone at `freq_hz` in `x`
/// (sampled at `sample_rate_hz`) via the Goertzel recursion generalized to
/// non-integer bins (a direct single-frequency DFT).
///
/// Returns the complex amplitude such that a pure input
/// `A·e^{j(2πft+φ)}` yields approximately `A·e^{jφ}`.
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn tone_amplitude(x: &[Complex], freq_hz: f64, sample_rate_hz: f64) -> Complex {
    assert!(!x.is_empty(), "empty signal");
    let w = -2.0 * std::f64::consts::PI * freq_hz / sample_rate_hz;
    let mut acc = Complex::ZERO;
    for (n, &v) in x.iter().enumerate() {
        acc += v * Complex::cis(w * n as f64);
    }
    acc / x.len() as f64
}

/// Power (1 Ω, `A²/2` convention) of the tone at `freq_hz`.
pub fn tone_power(x: &[Complex], freq_hz: f64, sample_rate_hz: f64) -> f64 {
    let a = tone_amplitude(x, freq_hz, sample_rate_hz);
    a.norm_sqr() / 2.0
}

/// Power of the tone in dBm.
pub fn tone_power_dbm(x: &[Complex], freq_hz: f64, sample_rate_hz: f64) -> f64 {
    crate::math::watts_to_dbm(tone_power(x, freq_hz, sample_rate_hz))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_amplitude_and_phase() {
        let fs = 80e6;
        let f0 = 5e6;
        let x: Vec<Complex> = (0..8000)
            .map(|n| {
                Complex::from_polar(2.0, 2.0 * std::f64::consts::PI * f0 * n as f64 / fs + 0.7)
            })
            .collect();
        let a = tone_amplitude(&x, f0, fs);
        assert!((a.abs() - 2.0).abs() < 1e-6);
        assert!((a.arg() - 0.7).abs() < 1e-6);
    }

    #[test]
    fn tone_power_convention() {
        let fs = 1.0;
        // Amplitude 1 tone → power 0.5 W.
        let x: Vec<Complex> = (0..1000)
            .map(|n| Complex::cis(2.0 * std::f64::consts::PI * 0.1 * n as f64))
            .collect();
        assert!((tone_power(&x, 0.1, fs) - 0.5).abs() < 1e-9);
        assert!((tone_power_dbm(&x, 0.1, fs) - 26.99).abs() < 0.02);
    }

    #[test]
    fn rejects_off_frequency_tone() {
        let fs = 1.0;
        // Measure at 0.2 while signal is at 0.1; with whole cycles the
        // orthogonality is exact.
        let x: Vec<Complex> = (0..1000)
            .map(|n| Complex::cis(2.0 * std::f64::consts::PI * 0.1 * n as f64))
            .collect();
        assert!(tone_power(&x, 0.2, fs) < 1e-20);
    }

    #[test]
    fn separates_two_tones() {
        let fs = 100.0;
        let x: Vec<Complex> = (0..10_000)
            .map(|n| {
                let t = n as f64 / fs;
                Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * 10.0 * t)
                    + Complex::from_polar(0.01, 2.0 * std::f64::consts::PI * 11.0 * t)
            })
            .collect();
        assert!((tone_amplitude(&x, 10.0, fs).abs() - 1.0).abs() < 1e-6);
        assert!((tone_amplitude(&x, 11.0, fs).abs() - 0.01).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn empty_signal_panics() {
        let _ = tone_amplitude(&[], 1.0, 10.0);
    }
}
