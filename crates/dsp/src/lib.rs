//! DSP primitives for WLAN system-level simulation.
//!
//! This crate is the substrate underneath the `wlansim` workspace (a
//! reproduction of *Verification of the RF Subsystem within Wireless LAN
//! System Level Simulation*, DATE 2003). It provides the numerical
//! building blocks the higher layers need:
//!
//! * [`Complex`] — complex arithmetic tuned for baseband signal processing
//! * [`fft`] — radix-2 FFT with cached twiddle factors
//! * [`window`] — spectral analysis windows
//! * [`fir`] / [`iir`] / [`design`] — FIR and IIR filtering plus classic
//!   analog-prototype filter design (Butterworth, Chebyshev I) via the
//!   bilinear transform
//! * [`resample`] — integer-factor polyphase resampling
//! * [`spectrum`] — Welch power-spectral-density estimation
//! * [`goertzel`] — single-bin DFT for tone measurements
//! * [`rng`] — deterministic xoshiro256** random source with uniform and
//!   Gaussian output for reproducible Monte-Carlo runs
//! * [`math`] — dB/dBm conversions and small special functions
//!
//! # Example
//!
//! ```
//! use wlan_dsp::{Complex, fft::Fft};
//!
//! let fft = Fft::new(64);
//! let mut buf: Vec<Complex> = (0..64)
//!     .map(|n| Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * 3.0 * n as f64 / 64.0))
//!     .collect();
//! fft.forward(&mut buf);
//! // All energy lands in bin 3.
//! assert!(buf[3].abs() > 7.9);
//! ```

pub mod complex;
pub mod corr;
pub mod design;
pub mod fft;
pub mod fir;
pub mod goertzel;
pub mod hilbert;
pub mod iir;
pub mod math;
pub mod resample;
pub mod rng;
pub mod spectrum;
pub mod window;

pub use complex::Complex;
pub use rng::Rng;
