//! Complex number type used throughout the workspace.
//!
//! A small, `Copy`, `f64`-based complex type. We ship our own rather than
//! pulling in an external crate so the numerical conventions (and the
//! whole reproduction) are self-contained.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j·im` with `f64` components.
///
/// # Example
///
/// ```
/// use wlan_dsp::Complex;
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The imaginary unit `j`.
pub const J: Complex = Complex { re: 0.0, im: 1.0 };

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar magnitude and angle (radians).
    ///
    /// ```
    /// use wlan_dsp::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12 && (z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(mag: f64, angle: f64) -> Self {
        Complex::new(mag * angle.cos(), mag * angle.sin())
    }

    /// `e^{jθ}` — a unit phasor at angle `theta` radians.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value when `z` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Complex::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns the unit-magnitude phasor `z/|z|`, or zero for zero input.
    #[inline]
    pub fn signum(self) -> Self {
        let a = self.abs();
        if a == 0.0 {
            Complex::ZERO
        } else {
            self.scale(1.0 / a)
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ is the definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

/// Mean power `mean(|x[n]|²)` of a slice of complex samples.
///
/// Returns `0.0` for an empty slice.
pub fn mean_power(x: &[Complex]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64
}

/// Scales a signal in place so that `mean(|x|²)` equals `target`.
///
/// Signals with zero power are left untouched.
pub fn normalize_power(x: &mut [Complex], target: f64) {
    let p = mean_power(x);
    if p > 0.0 {
        let k = (target / p).sqrt();
        for z in x.iter_mut() {
            *z = z.scale(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.5);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(a * Complex::ONE, a);
        assert!(close(a * a.inv(), Complex::ONE, 1e-12));
        assert_eq!(-a + a, Complex::ZERO);
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert_eq!(J * J, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::new(3.0, 4.0);
        let w = Complex::from_polar(z.abs(), z.arg());
        assert!(close(z, w, 1e-12));
        assert!((z.abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn conj_flips_imag() {
        let z = Complex::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex::new(1.0, -2.0));
        assert!((z * z.conj()).im.abs() < 1e-15);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let z = (J * std::f64::consts::PI).exp();
        assert!(close(z, Complex::new(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-3.0, 4.0);
        let r = z.sqrt();
        assert!(close(r * r, z, 1e-9));
    }

    #[test]
    fn division() {
        let a = Complex::new(4.0, 2.0);
        let b = Complex::new(1.0, -1.0);
        assert!(close(a / b * b, a, 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn mean_power_and_normalize() {
        let mut x = vec![Complex::new(2.0, 0.0); 8];
        assert!((mean_power(&x) - 4.0).abs() < 1e-12);
        normalize_power(&mut x, 1.0);
        assert!((mean_power(&x) - 1.0).abs() < 1e-12);
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn signum_is_unit_or_zero() {
        assert_eq!(Complex::ZERO.signum(), Complex::ZERO);
        let s = Complex::new(3.0, -4.0).signum();
        assert!((s.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    // Randomized algebraic-law checks over the workspace's own seeded
    // generator (deterministic, registry-free).
    fn rand_complex(rng: &mut crate::rng::Rng, span: f64) -> Complex {
        Complex::new(
            rng.uniform_range(-span, span),
            rng.uniform_range(-span, span),
        )
    }

    #[test]
    fn prop_mul_commutes() {
        let mut rng = crate::rng::Rng::new(0xC0FFEE);
        for _ in 0..256 {
            let a = rand_complex(&mut rng, 1e3);
            let b = rand_complex(&mut rng, 1e3);
            assert!(close(a * b, b * a, 1e-6), "{a} * {b}");
        }
    }

    #[test]
    fn prop_abs_is_multiplicative() {
        let mut rng = crate::rng::Rng::new(0xABCD);
        for _ in 0..256 {
            let a = rand_complex(&mut rng, 1e3);
            let b = rand_complex(&mut rng, 1e3);
            assert!(
                ((a * b).abs() - a.abs() * b.abs()).abs() < 1e-4,
                "{a} * {b}"
            );
        }
    }

    #[test]
    fn prop_distributive() {
        let mut rng = crate::rng::Rng::new(0xD157);
        for _ in 0..256 {
            let a = rand_complex(&mut rng, 1e2);
            let b = rand_complex(&mut rng, 1e2);
            let c = rand_complex(&mut rng, 1e2);
            assert!(close(a * (b + c), a * b + a * c, 1e-6), "{a} {b} {c}");
        }
    }
}
