//! Classic IIR filter design: Butterworth and Chebyshev type-I analog
//! prototypes discretized with the prewarped bilinear transform.
//!
//! These are the filter families used for the channel-selection lowpass
//! and inter-stage DC-blocking highpass of the paper's double-conversion
//! receiver (the paper sweeps the "chebyshev filter bandwidth" in Fig. 5).

use crate::complex::Complex;
use crate::iir::{Biquad, Sos};

/// Filter response type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Passes frequencies below the edge.
    Lowpass,
    /// Passes frequencies above the edge.
    Highpass,
}

/// Left-half-plane Butterworth poles for a normalized (ωc = 1) prototype.
fn butterworth_poles(order: usize) -> Vec<Complex> {
    (0..order)
        .map(|k| {
            let theta = std::f64::consts::PI * (2 * k + order + 1) as f64 / (2 * order) as f64;
            Complex::cis(theta)
        })
        .collect()
}

/// Left-half-plane Chebyshev type-I poles for a normalized prototype with
/// `ripple_db` passband ripple.
fn chebyshev1_poles(order: usize, ripple_db: f64) -> Vec<Complex> {
    let eps = (crate::math::db_to_lin(ripple_db) - 1.0).sqrt();
    let mu = (1.0 / eps).asinh() / order as f64;
    (0..order)
        .map(|k| {
            let theta = std::f64::consts::PI * (2 * k + 1) as f64 / (2 * order) as f64;
            Complex::new(-mu.sinh() * theta.sin(), mu.cosh() * theta.cos())
        })
        .collect()
}

/// Applies the bilinear transform to a *first-order* analog section
/// `(B0 + B1·s)/(A0 + A1·s)`, producing a first-order digital section
/// (no spurious pole/zero at z = −1).
fn bilinear_section1(bn: [f64; 2], an: [f64; 2], c: f64) -> Biquad {
    let b0 = bn[0] + bn[1] * c;
    let b1 = bn[0] - bn[1] * c;
    let a0 = an[0] + an[1] * c;
    let a1 = an[0] - an[1] * c;
    Biquad::new([b0 / a0, b1 / a0, 0.0], [a1 / a0, 0.0])
}

/// Applies the bilinear transform `s = c·(1−z⁻¹)/(1+z⁻¹)` to an analog
/// section `(B0 + B1·s + B2·s²)/(A0 + A1·s + A2·s²)`.
fn bilinear_section(bn: [f64; 3], an: [f64; 3], c: f64) -> Biquad {
    let (b0a, b1a, b2a) = (bn[0], bn[1], bn[2]);
    let (a0a, a1a, a2a) = (an[0], an[1], an[2]);
    let b0 = b0a + b1a * c + b2a * c * c;
    let b1 = 2.0 * b0a - 2.0 * b2a * c * c;
    let b2 = b0a - b1a * c + b2a * c * c;
    let a0 = a0a + a1a * c + a2a * c * c;
    let a1 = 2.0 * a0a - 2.0 * a2a * c * c;
    let a2 = a0a - a1a * c + a2a * c * c;
    Biquad::new([b0 / a0, b1 / a0, b2 / a0], [a1 / a0, a2 / a0])
}

/// Builds a digital filter from prototype poles.
///
/// The prototype is all-pole lowpass with unit cutoff. Lowpass designs
/// scale the poles by the prewarped edge; highpass designs additionally
/// apply the `s → ωc/s` transform (poles `ωc/p`, `n` zeros at the origin).
/// The cascade gain is normalized so the reference-frequency magnitude
/// equals `ref_gain` (DC for lowpass, Nyquist for highpass).
fn realize(
    proto_poles: &[Complex],
    kind: FilterKind,
    edge_hz: f64,
    sample_rate_hz: f64,
    ref_gain: f64,
) -> Sos {
    let c = 2.0 * sample_rate_hz;
    // Prewarped analog edge so the digital response hits the edge exactly.
    let wc = c * (std::f64::consts::PI * edge_hz / sample_rate_hz).tan();

    // Transform prototype poles to the target analog filter.
    let poles: Vec<Complex> = proto_poles
        .iter()
        .map(|&p| match kind {
            FilterKind::Lowpass => p * wc,
            FilterKind::Highpass => Complex::from_re(wc) / p,
        })
        .collect();

    // Pair complex-conjugate poles; the Chebyshev/Butterworth pole sets
    // are symmetric so sorting by imaginary part pairs k with n-1-k.
    let n = poles.len();
    let mut sections = Vec::new();
    let mut used = vec![false; n];
    for i in 0..n {
        if used[i] {
            continue;
        }
        let p = poles[i];
        if p.im.abs() < 1e-9 * p.abs().max(1e-300) {
            used[i] = true;
            // Real pole: (s - p) in the denominator.
            let an = [-p.re, 1.0];
            let bn = match kind {
                FilterKind::Lowpass => [1.0, 0.0],
                FilterKind::Highpass => [0.0, 1.0],
            };
            sections.push(bilinear_section1(bn, an, c));
        } else {
            // Find its conjugate partner.
            let j = (0..n)
                .find(|&j| {
                    !used[j] && j != i && (poles[j] - p.conj()).abs() < 1e-6 * p.abs().max(1e-300)
                })
                .expect("conjugate pole missing: prototype set not symmetric");
            used[i] = true;
            used[j] = true;
            // (s - p)(s - p*) = s² - 2Re(p)s + |p|²
            let an = [p.norm_sqr(), -2.0 * p.re, 1.0];
            let bn = match kind {
                FilterKind::Lowpass => [1.0, 0.0, 0.0],
                FilterKind::Highpass => [0.0, 0.0, 1.0],
            };
            sections.push(bilinear_section(bn, an, c));
        }
    }

    // Normalize the overall gain at the reference frequency.
    let sos = Sos::new(sections, 1.0);
    let f_ref = match kind {
        FilterKind::Lowpass => 0.0,
        FilterKind::Highpass => 0.5,
    };
    let mag = sos.response(f_ref).abs();
    let sections = sos.sections().to_vec();
    Sos::new(sections, ref_gain / mag)
}

/// One analog second-order section
/// `H(s) = (b0 + b1·s + b2·s²)/(a0 + a1·s + a2·s²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogSection {
    /// Numerator coefficients `[b0, b1, b2]`.
    pub b: [f64; 3],
    /// Denominator coefficients `[a0, a1, a2]`.
    pub a: [f64; 3],
}

impl AnalogSection {
    /// Response at frequency `f_hz` (`s = j2πf`).
    pub fn response(&self, f_hz: f64) -> Complex {
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * f_hz);
        let s2 = s * s;
        let num = Complex::from_re(self.b[0]) + s * self.b[1] + s2 * self.b[2];
        let den = Complex::from_re(self.a[0]) + s * self.a[1] + s2 * self.a[2];
        num / den
    }

    /// Frequency-scales the section (`s → s/λ`).
    pub fn scaled(&self, lambda: f64) -> AnalogSection {
        AnalogSection {
            b: [self.b[0], self.b[1] / lambda, self.b[2] / (lambda * lambda)],
            a: [self.a[0], self.a[1] / lambda, self.a[2] / (lambda * lambda)],
        }
    }
}

/// A continuous-time filter as a cascade of [`AnalogSection`]s with an
/// overall gain — the form consumed both by the bilinear discretization
/// here and by the `wlan-ams` continuous-time solver.
#[derive(Debug, Clone)]
pub struct AnalogFilter {
    sections: Vec<AnalogSection>,
    gain: f64,
    edge_hz: f64,
    kind: FilterKind,
}

impl AnalogFilter {
    /// Butterworth prototype realized at `edge_hz` (−3 dB point).
    ///
    /// # Panics
    ///
    /// Panics if `order == 0` or `edge_hz <= 0`.
    pub fn butterworth(order: usize, kind: FilterKind, edge_hz: f64) -> Self {
        assert!(
            order >= 1 && edge_hz > 0.0,
            "invalid butterworth parameters"
        );
        Self::from_poles(&butterworth_poles(order), kind, edge_hz, 1.0)
    }

    /// Chebyshev type-I prototype with `ripple_db` passband ripple.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`, `ripple_db <= 0` or `edge_hz <= 0`.
    pub fn chebyshev1(order: usize, ripple_db: f64, kind: FilterKind, edge_hz: f64) -> Self {
        assert!(
            order >= 1 && ripple_db > 0.0 && edge_hz > 0.0,
            "invalid chebyshev parameters"
        );
        let ref_gain = if order.is_multiple_of(2) {
            crate::math::db_to_amp(-ripple_db)
        } else {
            1.0
        };
        Self::from_poles(&chebyshev1_poles(order, ripple_db), kind, edge_hz, ref_gain)
    }

    fn from_poles(proto: &[Complex], kind: FilterKind, edge_hz: f64, ref_gain: f64) -> Self {
        let wc = 2.0 * std::f64::consts::PI * edge_hz;
        let poles: Vec<Complex> = proto
            .iter()
            .map(|&p| match kind {
                FilterKind::Lowpass => p * wc,
                FilterKind::Highpass => Complex::from_re(wc) / p,
            })
            .collect();
        let n = poles.len();
        let mut sections = Vec::new();
        let mut used = vec![false; n];
        for i in 0..n {
            if used[i] {
                continue;
            }
            let p = poles[i];
            if p.im.abs() < 1e-9 * p.abs().max(1e-300) {
                used[i] = true;
                sections.push(AnalogSection {
                    b: match kind {
                        FilterKind::Lowpass => [1.0, 0.0, 0.0],
                        FilterKind::Highpass => [0.0, 1.0, 0.0],
                    },
                    a: [-p.re, 1.0, 0.0],
                });
            } else {
                let j = (0..n)
                    .find(|&j| !used[j] && j != i && (poles[j] - p.conj()).abs() < 1e-6 * p.abs())
                    .expect("conjugate pole missing");
                used[i] = true;
                used[j] = true;
                sections.push(AnalogSection {
                    b: match kind {
                        FilterKind::Lowpass => [1.0, 0.0, 0.0],
                        FilterKind::Highpass => [0.0, 0.0, 1.0],
                    },
                    a: [p.norm_sqr(), -2.0 * p.re, 1.0],
                });
            }
        }
        // Normalize the reference-frequency gain.
        let tmp = AnalogFilter {
            sections,
            gain: 1.0,
            edge_hz,
            kind,
        };
        let f_ref = match kind {
            FilterKind::Lowpass => 0.0,
            FilterKind::Highpass => edge_hz * 1e6, // effectively s → ∞
        };
        let mag = tmp.response(f_ref).abs();
        AnalogFilter {
            gain: ref_gain / mag,
            ..tmp
        }
    }

    /// The second-order sections.
    pub fn sections(&self) -> &[AnalogSection] {
        &self.sections
    }

    /// Overall gain factor.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Design edge frequency in Hz.
    pub fn edge_hz(&self) -> f64 {
        self.edge_hz
    }

    /// Response at frequency `f_hz`.
    pub fn response(&self, f_hz: f64) -> Complex {
        let mut h = Complex::from_re(self.gain);
        for s in &self.sections {
            h *= s.response(f_hz);
        }
        h
    }

    /// Magnitude response in dB at `f_hz`.
    pub fn response_db(&self, f_hz: f64) -> f64 {
        crate::math::amp_to_db(self.response(f_hz).abs())
    }

    /// Discretizes via the prewarped bilinear transform at `sample_rate_hz`
    /// so the digital response matches this analog filter at the edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge is not below `sample_rate_hz / 2`.
    pub fn to_digital(&self, sample_rate_hz: f64) -> Sos {
        assert!(
            self.edge_hz < sample_rate_hz / 2.0,
            "edge {} above Nyquist of fs {}",
            self.edge_hz,
            sample_rate_hz
        );
        let c = 2.0 * sample_rate_hz;
        // Prewarp: scale the analog filter so the bilinear map puts the
        // edge exactly right.
        let wc_true = 2.0 * std::f64::consts::PI * self.edge_hz;
        let wc_pre = c * (std::f64::consts::PI * self.edge_hz / sample_rate_hz).tan();
        let lambda = wc_pre / wc_true;
        let sections: Vec<Biquad> = self
            .sections
            .iter()
            .map(|s| {
                let s = s.scaled(lambda);
                if s.a[2] == 0.0 && s.b[2] == 0.0 {
                    bilinear_section1([s.b[0], s.b[1]], [s.a[0], s.a[1]], c)
                } else {
                    bilinear_section(s.b, s.a, c)
                }
            })
            .collect();
        // Renormalize the digital gain at the reference frequency (the
        // bilinear transform preserves DC/Nyquist, but rounding in gain
        // accumulation is avoided by re-measuring).
        let sos = Sos::new(sections, 1.0);
        let f_ref = match self.kind {
            FilterKind::Lowpass => 0.0,
            FilterKind::Highpass => 0.5,
        };
        let target = match self.kind {
            FilterKind::Lowpass => self.response(0.0).abs(),
            FilterKind::Highpass => self.response(self.edge_hz * 1e6).abs(),
        };
        let mag = sos.response(f_ref).abs();
        let sections = sos.sections().to_vec();
        Sos::new(sections, target / mag)
    }
}

fn validate(order: usize, edge_hz: f64, sample_rate_hz: f64) {
    assert!(order >= 1, "filter order must be at least 1");
    assert!(
        edge_hz > 0.0 && edge_hz < sample_rate_hz / 2.0,
        "edge {edge_hz} Hz must be in (0, fs/2) with fs = {sample_rate_hz}"
    );
}

/// Designs a Butterworth filter.
///
/// `edge_hz` is the -3 dB frequency.
///
/// # Panics
///
/// Panics if `order == 0` or the edge is outside `(0, fs/2)`.
///
/// ```
/// use wlan_dsp::design::{butterworth, FilterKind};
/// let lp = butterworth(5, FilterKind::Lowpass, 8.3e6, 80e6);
/// assert!(lp.is_stable());
/// // -3 dB at the edge
/// assert!((lp.response_db(8.3e6 / 80e6) + 3.0).abs() < 0.1);
/// ```
pub fn butterworth(order: usize, kind: FilterKind, edge_hz: f64, sample_rate_hz: f64) -> Sos {
    validate(order, edge_hz, sample_rate_hz);
    let poles = butterworth_poles(order);
    realize(&poles, kind, edge_hz, sample_rate_hz, 1.0)
}

/// Designs a Chebyshev type-I filter with `ripple_db` of passband ripple.
///
/// `edge_hz` is the ripple-band edge (the response leaves the
/// `[-ripple_db, 0]` corridor beyond it).
///
/// # Panics
///
/// Panics if `order == 0`, `ripple_db <= 0`, or the edge is outside
/// `(0, fs/2)`.
pub fn chebyshev1(
    order: usize,
    ripple_db: f64,
    kind: FilterKind,
    edge_hz: f64,
    sample_rate_hz: f64,
) -> Sos {
    validate(order, edge_hz, sample_rate_hz);
    assert!(ripple_db > 0.0, "ripple must be positive, got {ripple_db}");
    let poles = chebyshev1_poles(order, ripple_db);
    // Even-order Chebyshev I has its DC (LP) / Nyquist (HP) gain at the
    // bottom of the ripple corridor.
    let ref_gain = if order.is_multiple_of(2) {
        crate::math::db_to_amp(-ripple_db)
    } else {
        1.0
    };
    realize(&poles, kind, edge_hz, sample_rate_hz, ref_gain)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 80e6;

    #[test]
    fn butterworth_lowpass_edge_is_3db() {
        for order in 1..=8 {
            let f = butterworth(order, FilterKind::Lowpass, 10e6, FS);
            assert!(f.is_stable(), "order {order}");
            let edge_db = f.response_db(10e6 / FS);
            assert!((edge_db + 3.0103).abs() < 0.05, "order {order}: {edge_db}");
            assert!((f.response_db(0.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn butterworth_rolloff_scales_with_order() {
        // One octave above the edge, order n should attenuate ~6n dB.
        for order in [2usize, 4, 6] {
            let f = butterworth(order, FilterKind::Lowpass, 5e6, FS);
            let att = -f.response_db(10e6 / FS);
            let expect = 6.02 * order as f64;
            assert!(
                (att - expect).abs() < 0.25 * expect,
                "order {order}: got {att}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn butterworth_monotonic_passband() {
        let f = butterworth(5, FilterKind::Lowpass, 10e6, FS);
        let mut last = f.response(0.0).abs();
        for i in 1..50 {
            let mag = f.response(i as f64 * (10e6 / FS) / 50.0).abs();
            assert!(mag <= last + 1e-9, "not monotonic at step {i}");
            last = mag;
        }
    }

    #[test]
    fn butterworth_highpass_blocks_dc() {
        let f = butterworth(4, FilterKind::Highpass, 1e6, FS);
        assert!(f.is_stable());
        assert!(f.response(0.0).abs() < 1e-9);
        assert!(f.response_db(0.5).abs() < 1e-6);
        assert!((f.response_db(1e6 / FS) + 3.0103).abs() < 0.05);
    }

    #[test]
    fn chebyshev_ripple_corridor() {
        let ripple = 0.5;
        for order in [3usize, 4, 5, 6] {
            let f = chebyshev1(order, ripple, FilterKind::Lowpass, 8e6, FS);
            assert!(f.is_stable(), "order {order}");
            // Whole passband inside [-ripple, 0] dB.
            let mut min_db: f64 = 0.0;
            let mut max_db: f64 = -100.0;
            for i in 0..=200 {
                let db = f.response_db(i as f64 * (8e6 / FS) / 200.0);
                min_db = min_db.min(db);
                max_db = max_db.max(db);
            }
            assert!(max_db < 1e-6, "order {order}: max {max_db}");
            assert!(min_db > -ripple - 0.02, "order {order}: min {min_db}");
            // Equiripple: the minimum actually touches the corridor floor.
            assert!(min_db < -ripple + 0.05, "order {order}: min {min_db}");
            // Edge is at the ripple bound.
            let edge_db = f.response_db(8e6 / FS);
            assert!(
                (edge_db + ripple).abs() < 0.05,
                "order {order}: edge {edge_db}"
            );
        }
    }

    #[test]
    fn chebyshev_sharper_than_butterworth() {
        let bw = butterworth(5, FilterKind::Lowpass, 8e6, FS);
        let ch = chebyshev1(5, 0.5, FilterKind::Lowpass, 8e6, FS);
        // One octave out, Chebyshev should attenuate more.
        let f = 16e6 / FS;
        assert!(ch.response_db(f) < bw.response_db(f) - 5.0);
    }

    #[test]
    fn chebyshev_highpass() {
        let f = chebyshev1(5, 1.0, FilterKind::Highpass, 2e6, FS);
        assert!(f.is_stable());
        assert!(f.response(0.0).abs() < 1e-9);
        assert!(f.response_db(0.5).abs() < 1e-6);
        // Stopband well below the edge.
        assert!(f.response_db(0.5e6 / FS) < -25.0);
    }

    #[test]
    fn first_order_sections() {
        let f = butterworth(1, FilterKind::Lowpass, 10e6, FS);
        assert_eq!(f.len(), 1);
        let f = chebyshev1(1, 0.5, FilterKind::Highpass, 10e6, FS);
        assert_eq!(f.len(), 1);
        assert!(f.is_stable());
    }

    #[test]
    fn section_count_is_ceil_half_order() {
        assert_eq!(butterworth(7, FilterKind::Lowpass, 5e6, FS).len(), 4);
        assert_eq!(butterworth(8, FilterKind::Lowpass, 5e6, FS).len(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_order_panics() {
        let _ = butterworth(0, FilterKind::Lowpass, 1e6, FS);
    }

    #[test]
    #[should_panic]
    fn edge_beyond_nyquist_panics() {
        let _ = butterworth(3, FilterKind::Lowpass, 50e6, FS);
    }

    #[test]
    fn time_domain_tone_attenuation_matches_response() {
        let mut f = chebyshev1(5, 0.5, FilterKind::Lowpass, 8e6, FS);
        let freq = 20e6 / FS;
        let expect = f.response(freq).abs();
        let n = 20_000;
        let mut p = 0.0;
        for i in 0..n {
            let x = Complex::cis(2.0 * std::f64::consts::PI * freq * i as f64);
            let y = f.push(x);
            if i > n / 2 {
                p += y.norm_sqr();
            }
        }
        let mag = (p / (n / 2 - 1) as f64).sqrt();
        assert!(
            (mag - expect).abs() < 0.02 * expect.max(1e-6),
            "time {mag} vs freq {expect}"
        );
    }
}

#[cfg(test)]
mod analog_tests {
    use super::*;

    #[test]
    fn analog_butterworth_edge_is_3db() {
        for order in 1..=7 {
            let f = AnalogFilter::butterworth(order, FilterKind::Lowpass, 10e6);
            assert!((f.response_db(10e6) + 3.0103).abs() < 0.01, "order {order}");
            assert!((f.response_db(0.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn analog_chebyshev_edge_at_ripple() {
        for order in [3usize, 4, 5] {
            let f = AnalogFilter::chebyshev1(order, 0.5, FilterKind::Lowpass, 8e6);
            assert!((f.response_db(8e6) + 0.5).abs() < 0.01, "order {order}");
        }
    }

    #[test]
    fn analog_highpass_rejects_dc() {
        let f = AnalogFilter::butterworth(3, FilterKind::Highpass, 1e6);
        assert!(f.response(0.0).abs() < 1e-12);
        assert!((f.response_db(100e6)).abs() < 0.01);
        assert!((f.response_db(1e6) + 3.0103).abs() < 0.01);
    }

    #[test]
    fn digitized_matches_analog_in_passband() {
        let fs = 80e6;
        let af = AnalogFilter::chebyshev1(5, 0.5, FilterKind::Lowpass, 8e6);
        let df = af.to_digital(fs);
        for f in [0.0f64, 1e6, 4e6, 8e6] {
            let a = af.response_db(f);
            let d = df.response_db(f / fs);
            assert!((a - d).abs() < 0.1, "f = {f}: analog {a}, digital {d}");
        }
    }

    #[test]
    fn digitized_matches_legacy_api() {
        let fs = 80e6;
        let a = AnalogFilter::chebyshev1(5, 0.5, FilterKind::Lowpass, 8e6).to_digital(fs);
        let b = chebyshev1(5, 0.5, FilterKind::Lowpass, 8e6, fs);
        for i in 0..40 {
            let f = i as f64 * 0.5 / 40.0;
            assert!(
                (a.response(f).abs() - b.response(f).abs()).abs() < 1e-6,
                "f = {f}"
            );
        }
    }

    #[test]
    fn section_scaling_shifts_edge() {
        let f1 = AnalogFilter::butterworth(2, FilterKind::Lowpass, 1e6);
        // Scaling all sections by 2 doubles every pole frequency.
        let scaled: Vec<AnalogSection> = f1.sections().iter().map(|s| s.scaled(2.0)).collect();
        let tmp = AnalogFilter {
            sections: scaled,
            gain: f1.gain(),
            edge_hz: 2e6,
            kind: FilterKind::Lowpass,
        };
        assert!((tmp.response_db(2e6) + 3.0103).abs() < 0.05);
    }
}

#[cfg(test)]
mod design_property_tests {
    use super::*;
    use crate::rng::Rng;

    /// Every Butterworth design in the sane parameter space is stable
    /// and monotone at DC/edge (64 sampled designs per order).
    #[test]
    fn prop_butterworth_always_stable() {
        let mut rng = Rng::new(11);
        let fs = 80e6;
        for _ in 0..64 {
            let order = 1 + rng.below(8) as usize;
            let edge_frac = rng.uniform_range(0.01, 0.45);
            let f = butterworth(order, FilterKind::Lowpass, edge_frac * fs, fs);
            assert!(f.is_stable(), "order {order} edge {edge_frac}");
            assert!(f.response_db(0.0).abs() < 1e-6);
            assert!((f.response_db(edge_frac) + 3.0103).abs() < 0.2);
        }
    }

    /// Chebyshev designs stay inside the ripple corridor in-band and
    /// stable for all sampled parameters.
    #[test]
    fn prop_chebyshev_corridor() {
        let mut rng = Rng::new(12);
        let fs = 80e6;
        for _ in 0..64 {
            let order = 1 + rng.below(7) as usize;
            let ripple = rng.uniform_range(0.1, 3.0);
            let edge_frac = rng.uniform_range(0.02, 0.4);
            let f = chebyshev1(order, ripple, FilterKind::Lowpass, edge_frac * fs, fs);
            assert!(f.is_stable(), "order {order} ripple {ripple}");
            for i in 0..=20 {
                let db = f.response_db(i as f64 * edge_frac / 20.0);
                assert!(db < 0.05, "ripple top exceeded: {db}");
                assert!(db > -ripple - 0.1, "ripple floor exceeded: {db}");
            }
        }
    }

    /// Highpass designs reject DC and pass Nyquist, always.
    #[test]
    fn prop_highpass_dc_rejection() {
        let mut rng = Rng::new(13);
        let fs = 80e6;
        for _ in 0..64 {
            let order = 1 + rng.below(6) as usize;
            let edge_frac = rng.uniform_range(0.01, 0.3);
            let f = butterworth(order, FilterKind::Highpass, edge_frac * fs, fs);
            assert!(f.is_stable(), "order {order} edge {edge_frac}");
            assert!(f.response(0.0).abs() < 1e-6);
            assert!(f.response_db(0.5).abs() < 1e-6);
        }
    }

    /// The analog prototype and its bilinear discretization agree in
    /// the passband for any sampled design.
    #[test]
    fn prop_analog_digital_agreement() {
        let mut rng = Rng::new(14);
        let fs = 80e6;
        for _ in 0..64 {
            let order = 1 + rng.below(6) as usize;
            let edge_frac = rng.uniform_range(0.02, 0.2);
            let edge = edge_frac * fs;
            let af = AnalogFilter::butterworth(order, FilterKind::Lowpass, edge);
            let df = af.to_digital(fs);
            for i in 1..=5 {
                let f_hz = i as f64 * edge / 6.0;
                let a = af.response_db(f_hz);
                let d = df.response_db(f_hz / fs);
                assert!((a - d).abs() < 0.3, "f {f_hz}: analog {a} vs digital {d}");
            }
        }
    }
}
