//! Radix-2 decimation-in-time FFT with cached twiddle factors.
//!
//! Sized for this workspace: 64-point OFDM (de)modulation and up to a few
//! thousand points for Welch spectral estimation. Forward transform is
//! unnormalized (`X[k] = Σ x[n]·e^{-j2πkn/N}`); the inverse divides by `N`
//! so `inverse(forward(x)) == x`. Unitary variants scaling by `1/√N` are
//! provided for power-preserving OFDM processing.

use crate::complex::Complex;

/// FFT plan for a fixed power-of-two size.
///
/// Precomputes the bit-reversal permutation and twiddle factors once;
/// transforms then run allocation-free in place.
///
/// # Example
///
/// ```
/// use wlan_dsp::{Complex, fft::Fft};
/// let fft = Fft::new(8);
/// let mut x = vec![Complex::ONE; 8];
/// fft.forward(&mut x);
/// assert!((x[0].re - 8.0).abs() < 1e-12); // DC bin
/// assert!(x[1].abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    rev: Vec<u32>,
    /// Twiddles for the forward transform: `e^{-j2πk/N}`, k in 0..N/2.
    tw: Vec<Complex>,
    /// Specialized tables for the 64-point OFDM hot path.
    fast64: Option<Box<Tables64>>,
}

/// Per-stage twiddle layout for the specialized 64-point path: stages
/// `len = 2, 4, …, 64` flattened in order, `half = len/2` entries each
/// (63 total), with a pre-conjugated copy so the inverse transform pays
/// no per-butterfly branch. Every entry equals the corresponding
/// `tw[k·step]` of the generic path, so outputs compare equal.
#[derive(Debug, Clone)]
struct Tables64 {
    fwd: [Complex; 63],
    inv: [Complex; 63],
}

/// Bit-reversal permutation of 0..64 as its 28 transposition pairs
/// (`i < j`), saving the fixed-point scan of the generic path.
const BITREV64_SWAPS: [(u8, u8); 28] = [
    (1, 32),
    (2, 16),
    (3, 48),
    (4, 8),
    (5, 40),
    (6, 24),
    (7, 56),
    (9, 36),
    (10, 20),
    (11, 52),
    (13, 44),
    (14, 28),
    (15, 60),
    (17, 34),
    (19, 50),
    (21, 42),
    (22, 26),
    (23, 58),
    (25, 38),
    (27, 54),
    (29, 46),
    (31, 62),
    (35, 49),
    (37, 41),
    (39, 57),
    (43, 53),
    (47, 61),
    (55, 59),
];

impl Fft {
    /// Creates a plan for an `n`-point transform.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n > 0,
            "FFT size must be a power of two, got {n}"
        );
        let rev = if n == 1 {
            vec![0]
        } else {
            let bits = n.trailing_zeros();
            (0..n as u32)
                .map(|i| i.reverse_bits() >> (32 - bits))
                .collect()
        };
        let tw: Vec<Complex> = (0..n / 2)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let fast64 = (n == 64).then(|| {
            let mut fwd = [Complex::ZERO; 63];
            let mut inv = [Complex::ZERO; 63];
            let mut off = 0;
            let mut len = 2;
            while len <= 64 {
                let half = len / 2;
                let step = 64 / len;
                for k in 0..half {
                    fwd[off + k] = tw[k * step];
                    inv[off + k] = tw[k * step].conj();
                }
                off += half;
                len *= 2;
            }
            Box::new(Tables64 { fwd, inv })
        });
        Fft { n, rev, tw, fast64 }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: a plan covers at least one point ([`Fft::new`]
    /// rejects zero sizes). Present only to satisfy the `len`/`is_empty`
    /// API convention clippy expects alongside [`Fft::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    fn dit(&self, x: &mut [Complex], inverse: bool) {
        if let Some(t) = &self.fast64 {
            let tw = if inverse { &t.inv } else { &t.fwd };
            dit64(x, tw);
            return;
        }
        self.dit_generic(x, inverse);
    }

    fn dit_generic(&self, x: &mut [Complex], inverse: bool) {
        let n = self.n;
        debug_assert_eq!(x.len(), n);
        if n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                x.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.tw[k * step];
                    if inverse {
                        w = w.conj();
                    }
                    let a = x[start + k];
                    let b = x[start + k + half] * w;
                    x[start + k] = a + b;
                    x[start + k + half] = a - b;
                }
            }
            len *= 2;
        }
    }

    /// In-place forward DFT (unnormalized).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan size.
    pub fn forward(&self, x: &mut [Complex]) {
        assert_eq!(x.len(), self.n, "buffer length must match FFT size");
        self.dit(x, false);
    }

    /// In-place forward DFT through the generic radix-2 loop even for
    /// sizes with a specialized path. The specialized 64-point kernel
    /// must produce values equal to this — `kernel_bench` and the
    /// conformance tests assert it; ordinary callers use
    /// [`Fft::forward`].
    #[doc(hidden)]
    pub fn forward_radix2(&self, x: &mut [Complex]) {
        assert_eq!(x.len(), self.n, "buffer length must match FFT size");
        self.dit_generic(x, false);
    }

    /// Generic-loop counterpart of [`Fft::forward_radix2`] for the
    /// inverse transform (including the `1/N` scaling).
    #[doc(hidden)]
    pub fn inverse_radix2(&self, x: &mut [Complex]) {
        assert_eq!(x.len(), self.n, "buffer length must match FFT size");
        self.dit_generic(x, true);
        let k = 1.0 / self.n as f64;
        for v in x.iter_mut() {
            *v = v.scale(k);
        }
    }

    /// In-place inverse DFT, scaled by `1/N`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the plan size.
    pub fn inverse(&self, x: &mut [Complex]) {
        assert_eq!(x.len(), self.n, "buffer length must match FFT size");
        self.dit(x, true);
        let k = 1.0 / self.n as f64;
        for v in x.iter_mut() {
            *v = v.scale(k);
        }
    }

    /// In-place unitary forward DFT (scaled by `1/√N`), preserving power.
    pub fn forward_unitary(&self, x: &mut [Complex]) {
        self.forward(x);
        let k = 1.0 / (self.n as f64).sqrt();
        for v in x.iter_mut() {
            *v = v.scale(k);
        }
    }

    /// In-place unitary inverse DFT (scaled by `1/√N`), preserving power.
    pub fn inverse_unitary(&self, x: &mut [Complex]) {
        assert_eq!(x.len(), self.n, "buffer length must match FFT size");
        self.dit(x, true);
        let k = 1.0 / (self.n as f64).sqrt();
        for v in x.iter_mut() {
            *v = v.scale(k);
        }
    }

    /// Forward 64-point transforms of `lanes` signals at once over a
    /// lane-major SoA plane: `plane[i * lanes + l]` holds sample `i` of
    /// lane `l`, so each butterfly touches `lanes` contiguous values and
    /// the inner loops autovectorize across packets. Per lane the
    /// butterfly sequence is exactly [`Fft::forward`]'s specialized
    /// 64-point kernel, so every lane's output compares equal to
    /// transforming it alone.
    ///
    /// # Panics
    ///
    /// Panics unless the plan is 64-point, `lanes > 0`, and
    /// `plane.len() == 64 * lanes`.
    pub fn forward64_batch(&self, plane: &mut [Complex], lanes: usize) {
        let t = self
            .fast64
            .as_ref()
            .expect("forward64_batch requires a 64-point plan");
        assert!(lanes > 0, "lanes must be positive");
        assert_eq!(
            plane.len(),
            64 * lanes,
            "plane must hold 64 rows of `lanes`"
        );
        dit64_batch(plane, lanes, &t.fwd);
    }

    /// Inverse counterpart of [`Fft::forward64_batch`], including the
    /// `1/N` scaling of [`Fft::inverse`].
    ///
    /// # Panics
    ///
    /// Panics unless the plan is 64-point, `lanes > 0`, and
    /// `plane.len() == 64 * lanes`.
    pub fn inverse64_batch(&self, plane: &mut [Complex], lanes: usize) {
        let t = self
            .fast64
            .as_ref()
            .expect("inverse64_batch requires a 64-point plan");
        assert!(lanes > 0, "lanes must be positive");
        assert_eq!(
            plane.len(),
            64 * lanes,
            "plane must hold 64 rows of `lanes`"
        );
        dit64_batch(plane, lanes, &t.inv);
        let k = 1.0 / 64.0;
        for v in plane.iter_mut() {
            *v = v.scale(k);
        }
    }
}

/// The specialized 64-point decimation-in-time kernel: precomputed
/// transposition pairs instead of the reversal-table scan, contiguous
/// per-stage twiddles with the inverse conjugation folded into the
/// table, and the `k = 0` butterflies (unit twiddle) reduced to
/// add/sub. Apart from skipping those exact-identity multiplies, the
/// arithmetic is operation-for-operation the generic radix-2 loop, so
/// every output compares equal to [`Fft::forward_radix2`].
///
/// The six stages are unrolled through a const-generic helper whose
/// butterflies run over borrow-split halves zipped with the exact
/// twiddle subslice: no index arithmetic, no bounds checks, and the
/// top/bottom aliasing is resolved at the type level, so the compiler
/// is free to overlap independent butterflies.
fn dit64(x: &mut [Complex], tw: &[Complex; 63]) {
    let x: &mut [Complex; 64] = x.try_into().expect("64-point kernel needs 64 samples");
    for &(i, j) in BITREV64_SWAPS.iter() {
        x.swap(i as usize, j as usize);
    }
    // Stage len = 2: every twiddle is unity.
    for pair in x.chunks_exact_mut(2) {
        let (a, b) = (pair[0], pair[1]);
        pair[0] = a + b;
        pair[1] = a - b;
    }
    // Each stage's table segment starts with its (unit) k = 0 entry;
    // the helper takes only the non-unit tail.
    stage64::<4>(x, &tw[2..3]);
    stage64::<8>(x, &tw[4..7]);
    stage64::<16>(x, &tw[8..15]);
    stage64::<32>(x, &tw[16..31]);
    stage64::<64>(x, &tw[32..63]);
}

/// One block-length-`LEN` stage of [`dit64`]. `tw` carries the stage's
/// `LEN/2 - 1` non-unit twiddles (butterflies `k = 1..half`); the
/// `k = 0` butterfly is the unit-twiddle add/sub. Per element the
/// floating-point operation order matches the generic loop exactly.
#[inline(always)]
fn stage64<const LEN: usize>(x: &mut [Complex; 64], tw: &[Complex]) {
    let half = LEN / 2;
    debug_assert_eq!(tw.len(), half - 1);
    for block in x.chunks_exact_mut(LEN) {
        let (top, bot) = block.split_at_mut(half);
        let (a, b) = (top[0], bot[0]);
        top[0] = a + b;
        bot[0] = a - b;
        for ((t, u), &w) in top[1..].iter_mut().zip(bot[1..].iter_mut()).zip(tw) {
            let a = *t;
            let b = *u * w;
            *t = a + b;
            *u = a - b;
        }
    }
}

/// The lane-major batch form of [`dit64`]: each scalar access `x[p]`
/// becomes the row `plane[p*lanes .. (p+1)*lanes]` and each butterfly
/// runs across the row — a long, stride-free loop over independent
/// lanes. The per-lane operation order (swaps, add/sub stages, twiddle
/// multiplies) is exactly [`dit64`]'s, so each lane's result compares
/// equal to the scalar kernel.
fn dit64_batch(plane: &mut [Complex], lanes: usize, tw: &[Complex; 63]) {
    debug_assert_eq!(plane.len(), 64 * lanes);
    // Two disjoint exact-length rows of the plane; the borrow split
    // lets the compiler drop the bounds checks so every butterfly loop
    // vectorizes across lanes.
    fn rows(
        plane: &mut [Complex],
        top: usize,
        bot: usize,
        lanes: usize,
    ) -> (&mut [Complex], &mut [Complex]) {
        let (head, tail) = plane.split_at_mut(bot);
        (&mut head[top..top + lanes], &mut tail[..lanes])
    }
    for &(i, j) in BITREV64_SWAPS.iter() {
        let (t_row, b_row) = rows(plane, i as usize * lanes, j as usize * lanes, lanes);
        t_row.swap_with_slice(b_row);
    }
    // Stage len = 2: every twiddle is unity.
    for p in (0..64).step_by(2) {
        let row = p * lanes;
        let (t_row, b_row) = rows(plane, row, row + lanes, lanes);
        for (a, b) in t_row.iter_mut().zip(b_row.iter_mut()) {
            let (x, y) = (*a, *b);
            *a = x + y;
            *b = x - y;
        }
    }
    let mut len = 4;
    let mut off = 1;
    while len <= 64 {
        let half = len / 2;
        for start in (0..64).step_by(len) {
            let (t_row, b_row) = rows(plane, start * lanes, (start + half) * lanes, lanes);
            for (a, b) in t_row.iter_mut().zip(b_row.iter_mut()) {
                let (x, y) = (*a, *b);
                *a = x + y;
                *b = x - y;
            }
            for k in 1..half {
                let w = tw[off + k];
                let (t_row, b_row) = rows(
                    plane,
                    (start + k) * lanes,
                    (start + k + half) * lanes,
                    lanes,
                );
                for (a, b) in t_row.iter_mut().zip(b_row.iter_mut()) {
                    let (x, y) = (*a, *b * w);
                    *a = x + y;
                    *b = x - y;
                }
            }
        }
        off += half;
        len *= 2;
    }
}

/// Reorders a spectrum so the zero-frequency bin sits in the middle
/// (`fftshift`), returning a new vector.
///
/// ```
/// use wlan_dsp::fft::fftshift;
/// assert_eq!(fftshift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
/// ```
pub fn fftshift<T: Copy>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

/// Frequency axis (Hz) matching [`fftshift`] ordering for an `n`-point
/// transform at sample rate `fs`.
pub fn fftshift_freqs(n: usize, fs: f64) -> Vec<f64> {
    let n_i = n as i64;
    (0..n_i)
        .map(|i| (i - n_i / 2) as f64 * fs / n as f64)
        .collect()
}

/// Reference O(N²) DFT used in tests and for non-power-of-two sizes.
pub fn dft_reference(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            x.iter()
                .enumerate()
                .map(|(i, &v)| {
                    v * Complex::cis(-2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64)
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.complex_gaussian(1.0)).collect()
    }

    #[test]
    fn matches_reference_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 256] {
            let x = rand_signal(n, n as u64);
            let mut y = x.clone();
            Fft::new(n).forward(&mut y);
            let r = dft_reference(&x);
            for (a, b) in y.iter().zip(r.iter()) {
                assert!((*a - *b).abs() < 1e-9 * n as f64, "n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let fft = Fft::new(128);
        let x = rand_signal(128, 9);
        let mut y = x.clone();
        fft.forward(&mut y);
        fft.inverse(&mut y);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn unitary_preserves_power() {
        let fft = Fft::new(64);
        let x = rand_signal(64, 4);
        let p_in: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x.clone();
        fft.forward_unitary(&mut y);
        let p_out: f64 = y.iter().map(|z| z.norm_sqr()).sum();
        assert!((p_in - p_out).abs() < 1e-9 * p_in);
        fft.inverse_unitary(&mut y);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn single_tone_lands_in_bin() {
        let n = 64;
        let fft = Fft::new(n);
        for bin in [1usize, 5, 31, 63] {
            let mut x: Vec<Complex> = (0..n)
                .map(|i| {
                    Complex::cis(2.0 * std::f64::consts::PI * bin as f64 * i as f64 / n as f64)
                })
                .collect();
            fft.forward(&mut x);
            assert!((x[bin].abs() - n as f64).abs() < 1e-9);
            let leak: f64 = x
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != bin)
                .map(|(_, z)| z.abs())
                .sum();
            assert!(leak < 1e-8);
        }
    }

    #[test]
    fn linearity() {
        let fft = Fft::new(32);
        let a = rand_signal(32, 1);
        let b = rand_signal(32, 2);
        let mut sum: Vec<Complex> = a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect();
        let (mut fa, mut fb) = (a, b);
        fft.forward(&mut fa);
        fft.forward(&mut fb);
        fft.forward(&mut sum);
        for i in 0..32 {
            assert!((sum[i] - (fa[i] + fb[i])).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn non_pow2_panics() {
        let _ = Fft::new(48);
    }

    #[test]
    #[should_panic]
    fn wrong_length_panics() {
        let fft = Fft::new(8);
        let mut x = vec![Complex::ZERO; 4];
        fft.forward(&mut x);
    }

    #[test]
    fn fftshift_even_odd() {
        assert_eq!(fftshift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
        assert_eq!(fftshift(&[0, 1, 2, 3, 4]), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn fftshift_freqs_axis() {
        let f = fftshift_freqs(4, 8.0);
        assert_eq!(f, vec![-4.0, -2.0, 0.0, 2.0]);
    }

    #[test]
    fn plan_table_sizes_for_small_transforms() {
        for n in [1usize, 2, 4, 8, 16] {
            let plan = Fft::new(n);
            assert_eq!(plan.rev.len(), n, "rev table for n={n}");
            assert_eq!(plan.tw.len(), n / 2, "twiddle table for n={n}");
        }
        // The 1-point plan is the identity: no twiddles, rev = [0].
        let one = Fft::new(1);
        assert!(one.tw.is_empty());
        assert_eq!(one.rev, vec![0]);
        let mut x = vec![crate::Complex::new(3.0, -2.0)];
        one.forward(&mut x);
        assert_eq!(x[0], crate::Complex::new(3.0, -2.0));
    }

    #[test]
    fn fast64_equals_generic_radix2() {
        // The specialized path must compare equal (not merely close) to
        // the generic loop — goldens and LinkReport pinning depend on it.
        let fft = Fft::new(64);
        for seed in 0..64u64 {
            let x = rand_signal(64, seed);
            let mut fast = x.clone();
            let mut generic = x.clone();
            fft.forward(&mut fast);
            fft.forward_radix2(&mut generic);
            assert_eq!(fast, generic, "forward seed {seed}");
            fft.inverse(&mut fast);
            fft.inverse_radix2(&mut generic);
            assert_eq!(fast, generic, "inverse seed {seed}");
        }
        // Structured inputs with exact zeros (null carriers) as well.
        let mut x = vec![Complex::ZERO; 64];
        for (i, v) in x.iter_mut().enumerate().take(27) {
            *v = Complex::new(1.0, -(i as f64));
        }
        let mut fast = x.clone();
        let mut generic = x;
        fft.inverse(&mut fast);
        fft.inverse_radix2(&mut generic);
        assert_eq!(fast, generic);
    }

    #[test]
    fn batch64_equals_scalar_per_lane() {
        // Lane-major batch kernel vs transforming each lane alone — exact
        // equality, for lane counts including 1 and non-powers of two.
        let fft = Fft::new(64);
        for lanes in [1usize, 2, 3, 7, 16] {
            let per_lane: Vec<Vec<Complex>> = (0..lanes)
                .map(|l| rand_signal(64, 1000 + l as u64))
                .collect();
            let mut plane = vec![Complex::ZERO; 64 * lanes];
            for (l, x) in per_lane.iter().enumerate() {
                for (i, &v) in x.iter().enumerate() {
                    plane[i * lanes + l] = v;
                }
            }
            let mut inv_plane = plane.clone();
            fft.forward64_batch(&mut plane, lanes);
            fft.inverse64_batch(&mut inv_plane, lanes);
            for (l, x) in per_lane.iter().enumerate() {
                let mut fwd = x.clone();
                let mut inv = x.clone();
                fft.forward(&mut fwd);
                fft.inverse(&mut inv);
                for i in 0..64 {
                    assert_eq!(plane[i * lanes + l], fwd[i], "fwd lanes {lanes} lane {l}");
                    assert_eq!(
                        inv_plane[i * lanes + l],
                        inv[i],
                        "inv lanes {lanes} lane {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn prop_parseval() {
        let n = 256;
        for seed in 0..32u64 {
            let x = rand_signal(n, seed);
            let mut y = x.clone();
            Fft::new(n).forward(&mut y);
            let time_e: f64 = x.iter().map(|z| z.norm_sqr()).sum();
            let freq_e: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
            assert!(
                (time_e - freq_e).abs() < 1e-7 * time_e.max(1.0),
                "seed {seed}"
            );
        }
    }
}
