//! Adjacent-channel power ratio and occupied-bandwidth measurements on
//! transmitted or received spectra.

use wlan_dsp::spectrum::{band_power, welch_psd};
use wlan_dsp::Complex;

/// Result of a channel-power analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcprMeasurement {
    /// Main-channel power (W, `mean(|x|²)/2` convention).
    pub main_w: f64,
    /// Lower adjacent-channel power (W).
    pub lower_w: f64,
    /// Upper adjacent-channel power (W).
    pub upper_w: f64,
    /// Lower ACPR in dB (negative = cleaner).
    pub lower_db: f64,
    /// Upper ACPR in dB.
    pub upper_db: f64,
}

/// Measures ACPR for a channelized signal: main channel centered at 0,
/// adjacent channels at ±`spacing_hz`, each integrating `bandwidth_hz`.
///
/// # Panics
///
/// Panics if the signal is shorter than the FFT size (2048) or the
/// bands exceed Nyquist.
pub fn measure_acpr(
    x: &[Complex],
    sample_rate_hz: f64,
    spacing_hz: f64,
    bandwidth_hz: f64,
) -> AcprMeasurement {
    assert!(
        spacing_hz + bandwidth_hz / 2.0 < sample_rate_hz / 2.0,
        "adjacent band beyond Nyquist"
    );
    let nfft = 2048.min(wlan_dsp::math::next_pow2(x.len() / 8).max(256));
    let (freqs, psd) = welch_psd(x, nfft, sample_rate_hz);
    let half = bandwidth_hz / 2.0;
    let main = band_power(&freqs, &psd, -half, half) / 2.0;
    let lower = band_power(&freqs, &psd, -spacing_hz - half, -spacing_hz + half) / 2.0;
    let upper = band_power(&freqs, &psd, spacing_hz - half, spacing_hz + half) / 2.0;
    AcprMeasurement {
        main_w: main,
        lower_w: lower,
        upper_w: upper,
        lower_db: wlan_dsp::math::lin_to_db(lower / main),
        upper_db: wlan_dsp::math::lin_to_db(upper / main),
    }
}

/// The bandwidth containing `fraction` (e.g. 0.99) of the total power,
/// centered on the spectrum's power centroid.
///
/// # Panics
///
/// Panics if `fraction` is outside `(0, 1]` or the signal is too short.
pub fn occupied_bandwidth(x: &[Complex], sample_rate_hz: f64, fraction: f64) -> f64 {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0,1]");
    let nfft = 2048.min(wlan_dsp::math::next_pow2(x.len() / 8).max(256));
    let (freqs, psd) = welch_psd(x, nfft, sample_rate_hz);
    let total: f64 = psd.iter().sum();
    // Walk outward from the peak bin until the fraction is contained.
    let peak = psd
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut acc = psd[peak];
    let (mut lo, mut hi) = (peak, peak);
    while acc < fraction * total && (lo > 0 || hi < psd.len() - 1) {
        let next_lo = if lo > 0 { psd[lo - 1] } else { f64::MIN };
        let next_hi = if hi < psd.len() - 1 {
            psd[hi + 1]
        } else {
            f64::MIN
        };
        if next_lo >= next_hi {
            lo -= 1;
            acc += psd[lo];
        } else {
            hi += 1;
            acc += psd[hi];
        }
    }
    freqs[hi] - freqs[lo]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_phy::{Rate, Transmitter};

    fn ofdm_burst() -> Vec<Complex> {
        Transmitter::new(Rate::R54).transmit(&[0x5Au8; 800]).samples
    }

    #[test]
    fn clean_ofdm_has_low_acpr() {
        let x = ofdm_burst();
        // ±20 MHz channels need the oversampled scene representation.
        let scene = wlan_channel::interferer::Scene::new(20e6, 4)
            .add(&x, 0.0, -40.0, 0)
            .render();
        let m = measure_acpr(&scene[2048..], 80e6, 20e6, 16.6e6);
        assert!(m.upper_db < -30.0, "upper ACPR {}", m.upper_db);
        assert!(m.lower_db < -30.0, "lower ACPR {}", m.lower_db);
    }

    #[test]
    fn nonlinearity_raises_acpr() {
        // Spectral regrowth: a compressed PA shoulder rises.
        use wlan_rf::nonlinearity::Nonlinearity;
        let x = ofdm_burst();
        let scene = wlan_channel::interferer::Scene::new(20e6, 4)
            .add(&x, 0.0, -20.0, 0)
            .render();
        let clean = measure_acpr(&scene[2048..], 80e6, 20e6, 16.6e6);
        let nl = Nonlinearity::rapp(wlan_units::Dbm(-25.0)); // deep compression
        let dirty_sig: Vec<Complex> = scene.iter().map(|&u| nl.apply(u, 1.0)).collect();
        let dirty = measure_acpr(&dirty_sig[2048..], 80e6, 20e6, 16.6e6);
        assert!(
            dirty.upper_db > clean.upper_db + 10.0,
            "no regrowth: clean {} dirty {}",
            clean.upper_db,
            dirty.upper_db
        );
    }

    #[test]
    fn occupied_bandwidth_of_ofdm() {
        // 802.11a occupies ±8.3 MHz ≈ 16.6 MHz.
        let x = ofdm_burst();
        let scene = wlan_channel::interferer::Scene::new(20e6, 4)
            .add(&x, 0.0, -40.0, 0)
            .render();
        let obw = occupied_bandwidth(&scene[2048..], 80e6, 0.99);
        assert!((15e6..19e6).contains(&obw), "occupied bandwidth {obw}");
    }

    #[test]
    fn single_tone_obw_is_narrow() {
        let x: Vec<Complex> = (0..32768)
            .map(|n| Complex::cis(2.0 * std::f64::consts::PI * 0.1 * n as f64))
            .collect();
        let obw = occupied_bandwidth(&x, 20e6, 0.99);
        assert!(obw < 0.5e6, "tone OBW {obw}");
    }

    #[test]
    #[should_panic]
    fn adjacent_beyond_nyquist_panics() {
        let x = vec![Complex::ONE; 4096];
        let _ = measure_acpr(&x, 20e6, 15e6, 16e6);
    }
}
