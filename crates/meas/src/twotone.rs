//! Two-tone intermodulation measurement: the SpectreRF-style IIP3
//! characterization ("test benches with two tone signals allow … several
//! measurements of RF specific parameters", §4.2).

use wlan_dsp::goertzel::tone_power_dbm;
use wlan_dsp::Complex;
use wlan_units::{Db, Dbm};

/// Result of a two-tone IM3 measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Iip3Measurement {
    /// Input power per tone used for the measurement.
    pub input_dbm: Dbm,
    /// Output fundamental power.
    pub fundamental_dbm: Dbm,
    /// Output IM3 product power.
    pub im3_dbm: Dbm,
    /// Extrapolated input-referred IP3.
    pub iip3_dbm: Dbm,
    /// Extrapolated output-referred IP3.
    pub oip3_dbm: Dbm,
    /// Measured gain.
    pub gain_db: Db,
}

/// Drives a device with two tones at `f1`/`f2` (each at `input_dbm`) and
/// extrapolates IIP3 from the IM3 product at `2·f1 − f2`.
///
/// The device is any frame processor `&[Complex] → Vec<Complex>` at
/// `sample_rate_hz`. Choose `input_dbm` well below compression (the 3:1
/// extrapolation assumes small-signal behavior).
///
/// # Panics
///
/// Panics if the tone frequencies don't fit the sample rate.
pub fn measure_iip3<F>(
    device: &mut F,
    f1_hz: f64,
    f2_hz: f64,
    input_dbm: Dbm,
    sample_rate_hz: f64,
    samples: usize,
) -> Iip3Measurement
where
    F: FnMut(&[Complex]) -> Vec<Complex>,
{
    assert!(
        f1_hz.abs() < sample_rate_hz / 2.0 && f2_hz.abs() < sample_rate_hz / 2.0,
        "tones outside Nyquist"
    );
    // Coherent sampling: snap both tones to the analysis-window frequency
    // grid so the (often −60…−100 dBc) IM3 bin is perfectly orthogonal to
    // the fundamentals — otherwise sinc leakage dominates the product.
    let tail_len = samples - samples / 4;
    let grid = sample_rate_hz / tail_len as f64;
    let f1 = (f1_hz / grid).round() * grid;
    let f2 = (f2_hz / grid).round() * grid;
    let a = input_dbm.to_amplitude().0;
    let x: Vec<Complex> = (0..samples)
        .map(|n| {
            let t = n as f64 / sample_rate_hz;
            Complex::from_polar(a, 2.0 * std::f64::consts::PI * f1 * t)
                + Complex::from_polar(a, 2.0 * std::f64::consts::PI * f2 * t)
        })
        .collect();
    let y = device(&x);
    // Skip transients.
    let tail = &y[y.len() - tail_len..];
    let fundamental_dbm = Dbm(tone_power_dbm(tail, f1, sample_rate_hz));
    let im3_dbm = Dbm(tone_power_dbm(tail, 2.0 * f1 - f2, sample_rate_hz));
    let gain_db = fundamental_dbm - input_dbm;
    // IIP3 = Pin + ΔIM3/2 where ΔIM3 = fundamental − IM3 (dBc).
    let iip3_dbm = input_dbm + (fundamental_dbm - im3_dbm) / 2.0;
    Iip3Measurement {
        input_dbm,
        fundamental_dbm,
        im3_dbm,
        iip3_dbm,
        oip3_dbm: iip3_dbm + gain_db,
        gain_db,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_rf::nonlinearity::Nonlinearity;

    #[test]
    fn recovers_cubic_iip3() {
        for iip3 in [-15.0, -5.0, 5.0] {
            let nl = Nonlinearity::Cubic {
                iip3_dbm: Dbm(iip3),
            };
            let mut dev =
                |x: &[Complex]| -> Vec<Complex> { x.iter().map(|&u| nl.apply(u, 4.0)).collect() };
            let m = measure_iip3(&mut dev, 1e6, 1.3e6, Dbm(iip3 - 30.0), 80e6, 40_000);
            assert!(
                (m.iip3_dbm.0 - iip3).abs() < 0.3,
                "set {iip3}, measured {}",
                m.iip3_dbm
            );
            assert!((m.gain_db.0 - 12.04).abs() < 0.1, "gain {}", m.gain_db);
            assert!((m.oip3_dbm - (m.iip3_dbm + m.gain_db)).0.abs() < 1e-9);
        }
    }

    #[test]
    fn rapp_iip3_relates_to_p1db() {
        // A smoothness-1 Rapp has a true cubic term: its small-signal
        // IIP3 sits ≈8.9 dB above P1dB (v_sat² derivation in the docs).
        let nl = Nonlinearity::Rapp {
            p1db_dbm: Dbm(-10.0),
            smoothness: 1.0,
        };
        let mut dev =
            |x: &[Complex]| -> Vec<Complex> { x.iter().map(|&u| nl.apply(u, 1.0)).collect() };
        let m = measure_iip3(&mut dev, 1e6, 1.4e6, Dbm(-35.0), 80e6, 40_000);
        assert!(
            (m.iip3_dbm.0 - (-1.1)).abs() < 1.5,
            "Rapp(p=1) IIP3 {} vs expected ≈ −1.1 dBm",
            m.iip3_dbm
        );
    }

    #[test]
    fn high_smoothness_rapp_has_weak_im3() {
        // Smoothness-2 Rapp has no cubic Taylor term, so the
        // small-signal extrapolated "IIP3" is far above P1dB.
        let nl = Nonlinearity::rapp(Dbm(-10.0));
        let mut dev =
            |x: &[Complex]| -> Vec<Complex> { x.iter().map(|&u| nl.apply(u, 1.0)).collect() };
        let m = measure_iip3(&mut dev, 1e6, 1.4e6, Dbm(-35.0), 80e6, 40_000);
        assert!(m.iip3_dbm.0 > 5.0, "Rapp(p=2) IIP3 {}", m.iip3_dbm);
    }

    #[test]
    fn linear_device_has_huge_iip3() {
        let mut dev = |x: &[Complex]| -> Vec<Complex> { x.iter().map(|&u| u * 2.0).collect() };
        let m = measure_iip3(&mut dev, 1e6, 1.3e6, Dbm(-40.0), 80e6, 20_000);
        assert!(m.iip3_dbm.0 > 50.0, "linear IIP3 {}", m.iip3_dbm);
    }

    #[test]
    fn im3_slope_is_three_to_one() {
        let nl = Nonlinearity::Cubic { iip3_dbm: Dbm(0.0) };
        let mut dev =
            |x: &[Complex]| -> Vec<Complex> { x.iter().map(|&u| nl.apply(u, 1.0)).collect() };
        let m1 = measure_iip3(&mut dev, 1e6, 1.3e6, Dbm(-40.0), 80e6, 40_000);
        let m2 = measure_iip3(&mut dev, 1e6, 1.3e6, Dbm(-30.0), 80e6, 40_000);
        let slope = (m2.im3_dbm - m1.im3_dbm).0 / 10.0;
        assert!((slope - 3.0).abs() < 0.05, "IM3 slope {slope}");
    }

    #[test]
    #[should_panic]
    fn tone_outside_nyquist_panics() {
        let mut dev = |x: &[Complex]| -> Vec<Complex> { x.to_vec() };
        let _ = measure_iip3(&mut dev, 50e6, 1e6, Dbm(-30.0), 80e6, 1000);
    }
}
