//! Bit-error-rate accumulation with confidence intervals.

/// Accumulating bit-error-rate meter.
///
/// # Example
///
/// ```
/// use wlan_meas::BerMeter;
/// let mut m = BerMeter::new();
/// m.update_bits(&[0, 1, 1, 0], &[0, 1, 0, 0]);
/// assert_eq!(m.errors(), 1);
/// assert_eq!(m.bits(), 4);
/// assert!((m.ber() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BerMeter {
    errors: u64,
    bits: u64,
    packets: u64,
    packet_errors: u64,
}

impl BerMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        BerMeter::default()
    }

    /// Compares two bit slices (values 0/1) of equal length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn update_bits(&mut self, tx: &[u8], rx: &[u8]) {
        assert_eq!(tx.len(), rx.len(), "bit slices must match");
        let e = tx
            .iter()
            .zip(rx.iter())
            .filter(|(a, b)| (**a ^ **b) & 1 == 1)
            .count() as u64;
        self.errors += e;
        self.bits += tx.len() as u64;
        self.packets += 1;
        if e > 0 {
            self.packet_errors += 1;
        }
    }

    /// Compares byte payloads bit-by-bit.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn update_bytes(&mut self, tx: &[u8], rx: &[u8]) {
        assert_eq!(tx.len(), rx.len(), "byte slices must match");
        let e: u64 = tx
            .iter()
            .zip(rx.iter())
            .map(|(a, b)| (a ^ b).count_ones() as u64)
            .sum();
        self.errors += e;
        self.bits += 8 * tx.len() as u64;
        self.packets += 1;
        if e > 0 {
            self.packet_errors += 1;
        }
    }

    /// Records a packet that was entirely lost (all bits counted as
    /// errored at rate 0.5, the convention for undetected packets).
    pub fn update_lost_packet(&mut self, bits: usize) {
        self.errors += bits as u64 / 2;
        self.bits += bits as u64;
        self.packets += 1;
        self.packet_errors += 1;
    }

    /// Total errored bits.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Total compared bits.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Packets observed.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Packets containing at least one bit error (or lost outright).
    pub fn packet_errors(&self) -> u64 {
        self.packet_errors
    }

    /// Bit error rate (0 for an empty meter).
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }

    /// Packet error rate.
    pub fn per(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.packet_errors as f64 / self.packets as f64
        }
    }

    /// 95 % Wilson confidence interval for the BER.
    pub fn confidence_interval(&self) -> (f64, f64) {
        if self.bits == 0 {
            return (0.0, 1.0);
        }
        let n = self.bits as f64;
        let p = self.ber();
        let z = 1.96f64;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Merges another meter's counts into this one.
    pub fn merge(&mut self, other: &BerMeter) {
        self.errors += other.errors;
        self.bits += other.bits;
        self.packets += other.packets;
        self.packet_errors += other.packet_errors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter() {
        let m = BerMeter::new();
        assert_eq!(m.ber(), 0.0);
        assert_eq!(m.per(), 0.0);
        assert_eq!(m.confidence_interval(), (0.0, 1.0));
    }

    #[test]
    fn counts_byte_errors() {
        let mut m = BerMeter::new();
        m.update_bytes(&[0xff, 0x00], &[0xfe, 0x00]);
        assert_eq!(m.errors(), 1);
        assert_eq!(m.bits(), 16);
        assert_eq!(m.per(), 1.0);
        m.update_bytes(&[0xaa], &[0xaa]);
        assert_eq!(m.packets(), 2);
        assert!((m.per() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lost_packet_counts_half() {
        let mut m = BerMeter::new();
        m.update_lost_packet(1000);
        assert_eq!(m.errors(), 500);
        assert!((m.ber() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_contains_estimate() {
        let mut m = BerMeter::new();
        let tx = vec![0u8; 10_000];
        let mut rx = vec![0u8; 10_000];
        for r in rx.iter_mut().step_by(100) {
            *r = 1;
        }
        m.update_bits(&tx, &rx);
        let (lo, hi) = m.confidence_interval();
        assert!(lo < 0.01 && 0.01 < hi, "({lo}, {hi})");
        assert!(hi - lo < 0.005, "interval too wide: {}", hi - lo);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = BerMeter::new();
        a.update_bits(&[0, 0], &[1, 0]);
        let mut b = BerMeter::new();
        b.update_bits(&[1, 1], &[1, 1]);
        a.merge(&b);
        assert_eq!(a.bits(), 4);
        assert_eq!(a.errors(), 1);
        assert_eq!(a.packets(), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut m = BerMeter::new();
        m.update_bits(&[0, 1], &[0]);
    }
}
