//! Sharded Monte-Carlo execution with adaptive BER early-stopping.
//!
//! The paper's §4.2 runtime table is dominated by Monte-Carlo BER
//! points that each simulate a fixed frame budget. This module replaces
//! the fixed budget with a deterministic sharded schedule:
//!
//! * Work is split into **shards** of a few frames each; every shard
//!   owns an RNG stream derived from its index (the caller seeds it via
//!   [`wlan_exec::split_seed`]), so a shard's result is a pure function
//!   of its identity.
//! * Shards execute in **waves** of fixed size. A wave's shards run
//!   concurrently on the [`ThreadPool`]; their accumulators merge in
//!   shard order. Because wave boundaries come from the plan — never
//!   from the thread count — the merged statistics after each wave, and
//!   therefore every early-stopping decision, are bit-identical whether
//!   the pool has 1 worker or 64.
//! * After each wave an optional [`EarlyStop`] rule inspects the
//!   accumulated [`BerMeter`]: once the Wilson 95 % interval is tight
//!   relative to the estimate (or the upper bound has fallen below the
//!   BER floor anyone cares about), the remaining shards are skipped.
//!   Deep-waterfall sweep points stop wasting frames, shallow points
//!   run to a controlled precision.

use crate::BerMeter;
use wlan_exec::ThreadPool;

/// Adaptive stopping rule evaluated on the accumulated meter at wave
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Never stop before this many compared bits.
    pub min_bits: u64,
    /// Stop once the Wilson 95 % half-width is at most this fraction of
    /// the BER estimate (for a non-zero estimate).
    pub rel_width: f64,
    /// Stop once the Wilson upper bound is at or below this floor —
    /// the point is provably "error-free for our purposes" and more
    /// frames cannot change the conclusion.
    pub ber_floor: f64,
}

impl Default for EarlyStop {
    /// ±25 % relative precision after at least 16 kbit, 1e-6 floor.
    fn default() -> Self {
        EarlyStop {
            min_bits: 16_000,
            rel_width: 0.25,
            ber_floor: 1e-6,
        }
    }
}

impl EarlyStop {
    /// `true` when the meter satisfies the rule.
    pub fn should_stop(&self, m: &BerMeter) -> bool {
        if m.bits() < self.min_bits {
            return false;
        }
        let (lo, hi) = m.confidence_interval();
        let p = m.ber();
        if p > 0.0 && (hi - lo) / 2.0 <= self.rel_width * p {
            return true;
        }
        hi <= self.ber_floor
    }
}

/// The deterministic shard schedule of one Monte-Carlo point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McPlan {
    /// Maximum number of shards (the frame budget divided by frames per
    /// shard).
    pub shards: usize,
    /// Shards per wave — the early-stopping check granularity. Part of
    /// the plan, **not** derived from the thread count, so results are
    /// scheduling-invariant.
    pub wave: usize,
    /// Optional adaptive stopping rule.
    pub early_stop: Option<EarlyStop>,
}

impl McPlan {
    /// A plan that runs every shard unconditionally.
    pub fn exhaustive(shards: usize) -> Self {
        McPlan {
            shards,
            wave: shards.max(1),
            early_stop: None,
        }
    }
}

/// Per-shard result that can fold into a running total.
///
/// [`BerMeter`] implements this directly; richer simulators (decoded
/// packet counts, EVM sums) implement it on their own accumulator.
pub trait McAccumulator: Send {
    /// The BER statistics the early-stopping rule inspects.
    fn meter(&self) -> &BerMeter;
    /// Folds `other` into `self`. Merging is performed in shard order.
    fn absorb(&mut self, other: Self);
}

impl McAccumulator for BerMeter {
    fn meter(&self) -> &BerMeter {
        self
    }

    fn absorb(&mut self, other: Self) {
        self.merge(&other);
    }
}

/// Outcome of a sharded run.
#[derive(Debug, Clone)]
pub struct McOutcome<A> {
    /// Merged accumulator over every executed shard.
    pub acc: A,
    /// Shards actually executed (`< plan.shards` iff stopped early).
    pub shards_run: usize,
    /// Whether the early-stopping rule fired.
    pub stopped_early: bool,
}

/// Runs `sim` over the plan's shards on the pool.
///
/// `sim` receives the shard index and must derive all randomness from
/// it. Returns the in-order merge of every executed shard.
///
/// # Panics
///
/// Panics on a zero-shard plan.
pub fn run_sharded<A, F>(pool: &ThreadPool, plan: &McPlan, sim: F) -> McOutcome<A>
where
    A: McAccumulator,
    F: Fn(usize) -> A + Sync,
{
    assert!(plan.shards > 0, "Monte-Carlo plan needs at least one shard");
    let wave = plan.wave.max(1);
    let mut acc: Option<A> = None;
    let mut shards_run = 0;
    let mut stopped_early = false;
    while shards_run < plan.shards {
        let n = wave.min(plan.shards - shards_run);
        let indices: Vec<usize> = (shards_run..shards_run + n).collect();
        let results = pool.par_map(&indices, |_, &shard| sim(shard));
        for r in results {
            match &mut acc {
                Some(a) => a.absorb(r),
                None => acc = Some(r),
            }
        }
        shards_run += n;
        if let (Some(rule), Some(a)) = (&plan.early_stop, &acc) {
            if shards_run < plan.shards && rule.should_stop(a.meter()) {
                stopped_early = true;
                break;
            }
        }
    }
    McOutcome {
        acc: acc.expect("at least one shard ran"),
        shards_run,
        stopped_early,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_exec::split_seed;

    /// Synthetic shard: `bits` bits with a deterministic pseudo-random
    /// error pattern at roughly `ber` derived from the shard seed.
    fn shard_meter(master: u64, shard: usize, bits: usize, ber: f64) -> BerMeter {
        let mut rng = wlan_dsp::Rng::new(split_seed(master, 0, shard as u64));
        let tx = vec![0u8; bits];
        let rx: Vec<u8> = (0..bits)
            .map(|_| if rng.uniform() < ber { 1 } else { 0 })
            .collect();
        let mut m = BerMeter::new();
        m.update_bits(&tx, &rx);
        m
    }

    #[test]
    fn merged_counts_are_thread_invariant() {
        let plan = McPlan {
            shards: 24,
            wave: 4,
            early_stop: Some(EarlyStop {
                min_bits: 2_000,
                rel_width: 0.3,
                ber_floor: 1e-6,
            }),
        };
        let run = |threads| {
            run_sharded(&ThreadPool::new(threads), &plan, |s| {
                shard_meter(99, s, 500, 0.05)
            })
        };
        let base = run(1);
        for threads in [2, 4] {
            let out = run(threads);
            assert_eq!(out.acc, base.acc, "{threads} threads");
            assert_eq!(out.shards_run, base.shards_run);
            assert_eq!(out.stopped_early, base.stopped_early);
        }
    }

    #[test]
    fn high_ber_point_stops_early() {
        let plan = McPlan {
            shards: 64,
            wave: 2,
            early_stop: Some(EarlyStop {
                min_bits: 1_000,
                rel_width: 0.5,
                ber_floor: 1e-9,
            }),
        };
        let out = run_sharded(&ThreadPool::serial(), &plan, |s| {
            shard_meter(7, s, 1_000, 0.1)
        });
        assert!(out.stopped_early);
        assert!(out.shards_run < 64, "ran {} shards", out.shards_run);
        // The estimate is still in the right place.
        let ber = out.acc.ber();
        assert!((0.05..0.2).contains(&ber), "ber {ber}");
    }

    #[test]
    fn clean_point_stops_at_the_floor() {
        // Zero errors: the Wilson upper bound shrinks with bits; once it
        // crosses the floor the point stops.
        let plan = McPlan {
            shards: 1_000,
            wave: 10,
            early_stop: Some(EarlyStop {
                min_bits: 10_000,
                rel_width: 0.25,
                ber_floor: 1e-3,
            }),
        };
        let out = run_sharded(&ThreadPool::serial(), &plan, |s| {
            shard_meter(7, s, 500, 0.0)
        });
        assert!(out.stopped_early);
        assert!(out.shards_run < 100, "ran {} shards", out.shards_run);
        assert_eq!(out.acc.errors(), 0);
    }

    #[test]
    fn no_rule_runs_every_shard() {
        let out = run_sharded(&ThreadPool::new(3), &McPlan::exhaustive(17), |s| {
            shard_meter(1, s, 100, 0.02)
        });
        assert_eq!(out.shards_run, 17);
        assert!(!out.stopped_early);
        assert_eq!(out.acc.bits(), 1_700);
    }

    #[test]
    fn early_stop_respects_min_bits() {
        let rule = EarlyStop {
            min_bits: 10_000,
            rel_width: 10.0, // absurdly loose — only min_bits gates
            ber_floor: 1.0,
        };
        let mut m = BerMeter::new();
        m.update_bits(&[0; 100], &[1; 100]);
        assert!(!rule.should_stop(&m));
        let big = shard_meter(3, 0, 20_000, 0.1);
        assert!(rule.should_stop(&big));
    }
}
