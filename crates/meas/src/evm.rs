//! Error vector magnitude: "the distance between the complex point of a
//! received symbol to the ideal complex point of a reference" (§5.2).

use wlan_dsp::Complex;

/// Accumulating EVM meter.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvmMeter {
    err_acc: f64,
    ref_acc: f64,
    peak_err: f64,
    count: u64,
}

impl EvmMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EvmMeter::default()
    }

    /// Adds one received symbol against its ideal reference point.
    pub fn update(&mut self, received: Complex, reference: Complex) {
        let e = (received - reference).norm_sqr();
        self.err_acc += e;
        self.ref_acc += reference.norm_sqr();
        self.peak_err = self.peak_err.max(e);
        self.count += 1;
    }

    /// Adds a slice of symbol/reference pairs.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn update_slice(&mut self, received: &[Complex], reference: &[Complex]) {
        assert_eq!(received.len(), reference.len(), "length mismatch");
        for (&r, &i) in received.iter().zip(reference.iter()) {
            self.update(r, i);
        }
    }

    /// Number of symbols accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// RMS EVM normalized to the RMS reference magnitude (linear).
    ///
    /// Returns 0 for an empty meter.
    pub fn rms(&self) -> f64 {
        if self.count == 0 || self.ref_acc == 0.0 {
            0.0
        } else {
            (self.err_acc / self.ref_acc).sqrt()
        }
    }

    /// RMS EVM in percent.
    pub fn rms_percent(&self) -> f64 {
        100.0 * self.rms()
    }

    /// RMS EVM in dB.
    pub fn rms_db(&self) -> f64 {
        wlan_dsp::math::amp_to_db(self.rms())
    }

    /// Peak symbol error magnitude relative to the RMS reference.
    pub fn peak(&self) -> f64 {
        if self.count == 0 || self.ref_acc == 0.0 {
            0.0
        } else {
            (self.peak_err / (self.ref_acc / self.count as f64)).sqrt()
        }
    }
}

/// EVM expected from pure AWGN at a given SNR: `EVM = 10^(−SNR/20)`.
pub fn evm_from_snr_db(snr_db: f64) -> f64 {
    wlan_dsp::math::db_to_amp(-snr_db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_dsp::Rng;

    #[test]
    fn perfect_symbols_zero_evm() {
        let mut m = EvmMeter::new();
        for i in 0..10 {
            let p = Complex::from_polar(1.0, i as f64);
            m.update(p, p);
        }
        assert_eq!(m.rms(), 0.0);
        assert_eq!(m.peak(), 0.0);
    }

    #[test]
    fn known_error_vector() {
        let mut m = EvmMeter::new();
        // Reference magnitude 1, error magnitude 0.1 → EVM 10 % = −20 dB.
        m.update(Complex::new(1.1, 0.0), Complex::ONE);
        m.update(Complex::new(0.9, 0.0), Complex::ONE);
        assert!((m.rms() - 0.1).abs() < 1e-12);
        assert!((m.rms_percent() - 10.0).abs() < 1e-9);
        assert!((m.rms_db() + 20.0).abs() < 1e-9);
    }

    #[test]
    fn awgn_evm_matches_snr() {
        let mut rng = Rng::new(1);
        let snr_db = 25.0;
        let nv = wlan_dsp::math::db_to_lin(-snr_db);
        let mut m = EvmMeter::new();
        for _ in 0..100_000 {
            let r = Complex::ONE + rng.complex_gaussian(nv);
            m.update(r, Complex::ONE);
        }
        let expect = evm_from_snr_db(snr_db);
        assert!(
            (m.rms() / expect - 1.0).abs() < 0.02,
            "evm {} vs {expect}",
            m.rms()
        );
    }

    #[test]
    fn peak_exceeds_rms() {
        let mut rng = Rng::new(2);
        let mut m = EvmMeter::new();
        for _ in 0..1000 {
            m.update(Complex::ONE + rng.complex_gaussian(0.01), Complex::ONE);
        }
        assert!(m.peak() > m.rms());
    }

    #[test]
    #[should_panic]
    fn mismatched_slices_panic() {
        let mut m = EvmMeter::new();
        m.update_slice(&[Complex::ONE], &[]);
    }
}
