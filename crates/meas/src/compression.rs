//! Gain-compression sweep: measures the input-referred 1 dB compression
//! point of a behavioral block.

use wlan_dsp::goertzel::tone_power_dbm;
use wlan_dsp::Complex;
use wlan_units::{Db, Dbm};

/// One point of a compression sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionPoint {
    /// Input power.
    pub input_dbm: Dbm,
    /// Output power at the fundamental.
    pub output_dbm: Dbm,
    /// Gain.
    pub gain_db: Db,
}

/// Result of a compression measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionMeasurement {
    /// Small-signal gain.
    pub small_signal_gain_db: Db,
    /// Input-referred 1 dB compression point, if reached within the
    /// swept range.
    pub p1db_in_dbm: Option<Dbm>,
    /// Output-referred 1 dB compression point.
    pub p1db_out_dbm: Option<Dbm>,
    /// The raw sweep.
    pub sweep: Vec<CompressionPoint>,
}

/// Sweeps a single tone from `start_dbm` to `stop_dbm` in `step_db`
/// steps and finds the 1 dB compression point by interpolation.
///
/// # Panics
///
/// Panics if the sweep range or step is degenerate.
pub fn measure_p1db<F>(
    device: &mut F,
    tone_hz: f64,
    start_dbm: Dbm,
    stop_dbm: Dbm,
    step_db: Db,
    sample_rate_hz: f64,
    samples_per_point: usize,
) -> CompressionMeasurement
where
    F: FnMut(&[Complex]) -> Vec<Complex>,
{
    assert!(
        stop_dbm > start_dbm && step_db > Db::ZERO,
        "bad sweep range"
    );
    let mut sweep = Vec::new();
    let mut p = start_dbm;
    while p.0 <= stop_dbm.0 + 1e-9 {
        let a = p.to_amplitude().0;
        let x: Vec<Complex> = (0..samples_per_point)
            .map(|n| {
                Complex::from_polar(
                    a,
                    2.0 * std::f64::consts::PI * tone_hz * n as f64 / sample_rate_hz,
                )
            })
            .collect();
        let y = device(&x);
        let out = Dbm(tone_power_dbm(&y[y.len() / 4..], tone_hz, sample_rate_hz));
        sweep.push(CompressionPoint {
            input_dbm: p,
            output_dbm: out,
            gain_db: out - p,
        });
        p += step_db;
    }
    let g0 = sweep[0].gain_db;
    // Find the crossing of gain = g0 − 1 dB.
    let threshold = g0 - Db(1.0);
    let mut p1 = None;
    for w in sweep.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a.gain_db >= threshold && b.gain_db < threshold {
            let t = (threshold - a.gain_db).0 / (b.gain_db - a.gain_db).0;
            p1 = Some(Dbm(a.input_dbm.0 + t * (b.input_dbm - a.input_dbm).0));
            break;
        }
    }
    CompressionMeasurement {
        small_signal_gain_db: g0,
        p1db_in_dbm: p1,
        p1db_out_dbm: p1.map(|pin| pin + g0 - Db(1.0)),
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_rf::nonlinearity::Nonlinearity;

    fn rapp_device(p1db: f64, gain: f64) -> impl FnMut(&[Complex]) -> Vec<Complex> {
        let nl = Nonlinearity::rapp(Dbm(p1db));
        move |x: &[Complex]| x.iter().map(|&u| nl.apply(u, gain)).collect()
    }

    #[test]
    fn finds_rapp_p1db() {
        for p1 in [-25.0, -10.0, 0.0] {
            let mut dev = rapp_device(p1, 5.0);
            let m = measure_p1db(
                &mut dev,
                1e6,
                Dbm(p1 - 30.0),
                Dbm(p1 + 10.0),
                Db(1.0),
                80e6,
                4000,
            );
            let got = m.p1db_in_dbm.expect("compression reached");
            assert!((got.0 - p1).abs() < 0.25, "set {p1}, got {got}");
            assert!((m.small_signal_gain_db.0 - 13.98).abs() < 0.1);
            let out = m.p1db_out_dbm.unwrap();
            assert!((out.0 - (p1 + 13.98 - 1.0)).abs() < 0.4, "out {out}");
        }
    }

    #[test]
    fn cubic_p1db_is_9p6_below_iip3() {
        let nl = Nonlinearity::Cubic {
            iip3_dbm: Dbm(-5.0),
        };
        let mut dev =
            |x: &[Complex]| -> Vec<Complex> { x.iter().map(|&u| nl.apply(u, 1.0)).collect() };
        let m = measure_p1db(&mut dev, 1e6, Dbm(-40.0), Dbm(-5.0), Db(0.5), 80e6, 4000);
        let got = m.p1db_in_dbm.expect("reached");
        assert!((got.0 - (-14.64)).abs() < 0.3, "got {got}");
    }

    #[test]
    fn linear_device_never_compresses() {
        let mut dev = |x: &[Complex]| -> Vec<Complex> { x.iter().map(|&u| u * 3.0).collect() };
        let m = measure_p1db(&mut dev, 1e6, Dbm(-40.0), Dbm(0.0), Db(2.0), 80e6, 2000);
        assert!(m.p1db_in_dbm.is_none());
        assert!((m.small_signal_gain_db.0 - 9.54).abs() < 0.05);
    }

    #[test]
    fn sweep_is_monotone_in_input() {
        let mut dev = rapp_device(-10.0, 1.0);
        let m = measure_p1db(&mut dev, 1e6, Dbm(-40.0), Dbm(10.0), Db(2.0), 80e6, 2000);
        for w in m.sweep.windows(2) {
            assert!(w[1].input_dbm > w[0].input_dbm);
            assert!(w[1].output_dbm.0 >= w[0].output_dbm.0 - 0.01);
        }
    }

    #[test]
    #[should_panic]
    fn degenerate_sweep_panics() {
        let mut dev = |x: &[Complex]| -> Vec<Complex> { x.to_vec() };
        let _ = measure_p1db(&mut dev, 1e6, Dbm(0.0), Dbm(-10.0), Db(1.0), 80e6, 100);
    }
}
