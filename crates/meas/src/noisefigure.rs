//! Noise-figure measurement: SNR degradation through a device observing
//! the standard T₀ source noise floor.

use wlan_dsp::complex::mean_power;
use wlan_dsp::goertzel::tone_power;
use wlan_dsp::{Complex, Rng};
use wlan_rf::noise::source_noise_power;
use wlan_units::{Db, Dbm};

/// Result of a noise-figure measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseFigureMeasurement {
    /// Input SNR of the probe tone over the source floor.
    pub snr_in_db: Db,
    /// Output SNR.
    pub snr_out_db: Db,
    /// Noise figure: `SNR_in − SNR_out`.
    pub nf_db: Db,
    /// Measured device gain.
    pub gain_db: Db,
}

/// Measures the noise figure of `device` by driving it with a probe tone
/// plus the kT₀ source floor, then comparing input and output SNR.
///
/// `device` must include its own internal noise (e.g. an
/// [`wlan_rf::Amplifier`] with noise enabled). The probe level should sit
/// well above the floor but below compression.
pub fn measure_noise_figure<F>(
    device: &mut F,
    tone_hz: f64,
    tone_dbm: Dbm,
    sample_rate_hz: f64,
    samples: usize,
    seed: u64,
) -> NoiseFigureMeasurement
where
    F: FnMut(&[Complex]) -> Vec<Complex>,
{
    let mut rng = Rng::new(seed);
    let floor = source_noise_power(sample_rate_hz);
    let a = tone_dbm.to_amplitude().0;
    let x: Vec<Complex> = (0..samples)
        .map(|n| {
            Complex::from_polar(
                a,
                2.0 * std::f64::consts::PI * tone_hz * n as f64 / sample_rate_hz,
            ) + rng.complex_gaussian(floor)
        })
        .collect();
    let y = device(&x);
    let tail = &y[y.len() / 4..];

    let p_tone_out = 2.0 * tone_power(tail, tone_hz, sample_rate_hz);
    let p_total_out = mean_power(tail);
    let p_noise_out = (p_total_out - p_tone_out).max(1e-300);

    let p_tone_in = 2.0 * tone_dbm.to_watts().0;
    let snr_in_db = Db::from_linear(p_tone_in / floor);
    let snr_out_db = Db::from_linear(p_tone_out / p_noise_out);
    let gain_db = Db::from_linear(p_tone_out / p_tone_in);
    NoiseFigureMeasurement {
        snr_in_db,
        snr_out_db,
        nf_db: snr_in_db - snr_out_db,
        gain_db,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_dsp::Rng;
    use wlan_rf::nonlinearity::Nonlinearity;
    use wlan_rf::Amplifier;

    #[test]
    fn measures_amplifier_nf() {
        let fs = 20e6;
        for nf in [2.0, 6.0, 12.0] {
            let mut amp = Amplifier::new(Db(15.0), Db(nf), Nonlinearity::Linear, fs, Rng::new(3));
            let mut dev = |x: &[Complex]| amp.process(x);
            let m = measure_noise_figure(&mut dev, 1e6, Dbm(-70.0), fs, 400_000, 7);
            assert!((m.nf_db.0 - nf).abs() < 0.4, "set {nf}, got {}", m.nf_db);
            assert!((m.gain_db.0 - 15.0).abs() < 0.2, "gain {}", m.gain_db);
        }
    }

    #[test]
    fn noiseless_device_measures_near_zero_nf() {
        let fs = 20e6;
        let mut dev = |x: &[Complex]| -> Vec<Complex> { x.iter().map(|&u| u * 10.0).collect() };
        let m = measure_noise_figure(&mut dev, 1e6, Dbm(-70.0), fs, 200_000, 8);
        assert!(m.nf_db.0.abs() < 0.3, "nf {}", m.nf_db);
        assert!((m.gain_db.0 - 20.0).abs() < 0.2);
    }

    #[test]
    fn cascade_follows_friis() {
        let fs = 20e6;
        // LNA 15 dB / NF 3, then lossy mixer NF 12 / gain 6.
        let mut lna = Amplifier::new(Db(15.0), Db(3.0), Nonlinearity::Linear, fs, Rng::new(4));
        let mut mix = Amplifier::new(Db(6.0), Db(12.0), Nonlinearity::Linear, fs, Rng::new(5));
        let mut dev = |x: &[Complex]| -> Vec<Complex> { mix.process(&lna.process(x)) };
        let m = measure_noise_figure(&mut dev, 1e6, Dbm(-70.0), fs, 400_000, 9);
        let friis = wlan_rf::spec::cascade_noise_figure_db(&[
            wlan_rf::spec::StageSpec {
                name: "lna",
                gain_db: Db(15.0),
                nf_db: Db(3.0),
            },
            wlan_rf::spec::StageSpec {
                name: "mix",
                gain_db: Db(6.0),
                nf_db: Db(12.0),
            },
        ]);
        assert!(
            (m.nf_db - friis).0.abs() < 0.5,
            "measured {} vs Friis {friis}",
            m.nf_db
        );
    }
}
