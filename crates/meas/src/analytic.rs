//! Closed-form AWGN bit-error-rate baselines.
//!
//! The conformance layer compares Monte-Carlo sweeps against theory, so
//! the theory side must be *exact*, not the usual high-SNR
//! approximations. For Gray-coded square QAM (and BPSK/QPSK as the
//! degenerate cases) the per-bit error probability over AWGN has an
//! exact expression as a signed sum of Q-functions: each I/Q axis is an
//! independent Gray-coded PAM constellation, and a transmitted level is
//! decided as whatever level's decision region the noisy sample lands
//! in. [`pam_gray_ber`] enumerates those regions directly instead of
//! trusting hand-derived formulas.
//!
//! Conventions match the rest of the workspace: `snr_db` is the ratio
//! of (unit) average symbol power to *total* complex noise power, i.e.
//! the `nv` handed to `Rng::complex_gaussian` is `10^(-snr_db/10)` and
//! each real axis sees variance `nv/2`.

use wlan_dsp::math::q_function;

/// One PAM level: its (unnormalized) amplitude and the Gray-coded bits
/// it carries.
type PamLevel = (f64, &'static [u8]);

/// 802.11a Table 78: BPSK on the I axis only.
const PAM2: &[PamLevel] = &[(-1.0, &[0]), (1.0, &[1])];

/// 802.11a Table 81 (one axis of 16-QAM), Gray order −3 −1 +1 +3.
const PAM4: &[PamLevel] = &[
    (-3.0, &[0, 0]),
    (-1.0, &[0, 1]),
    (1.0, &[1, 1]),
    (3.0, &[1, 0]),
];

/// 802.11a Table 82 (one axis of 64-QAM).
const PAM8: &[PamLevel] = &[
    (-7.0, &[0, 0, 0]),
    (-5.0, &[0, 0, 1]),
    (-3.0, &[0, 1, 1]),
    (-1.0, &[0, 1, 0]),
    (1.0, &[1, 1, 0]),
    (3.0, &[1, 1, 1]),
    (5.0, &[1, 0, 1]),
    (7.0, &[1, 0, 0]),
];

/// Exact per-bit error probability of a Gray-coded PAM constellation
/// with minimum-distance (nearest-level) decisions in Gaussian noise of
/// standard deviation `sigma` per axis. `scale` multiplies the level
/// amplitudes (the K_mod normalization).
///
/// For each transmitted level and each decision region the probability
/// mass `Q((lo−a)/σ) − Q((hi−a)/σ)` is attributed to the Hamming
/// distance between the transmitted and decided labels; levels are
/// equiprobable.
fn pam_gray_ber(levels: &[PamLevel], scale: f64, sigma: f64) -> f64 {
    let m = levels.len();
    let bits_per_level = levels[0].1.len();
    // Decision thresholds are midpoints between adjacent levels.
    let thresholds: Vec<f64> = levels
        .windows(2)
        .map(|w| scale * 0.5 * (w[0].0 + w[1].0))
        .collect();
    let mut bit_errors = 0.0;
    for (tx_level, tx_bits) in levels {
        let a = scale * tx_level;
        for (region, (_, rx_bits)) in levels.iter().enumerate() {
            // Region bounds: (−∞, t₀], (t₀, t₁], …, (t_{m−2}, ∞).
            let lo = if region == 0 {
                f64::NEG_INFINITY
            } else {
                thresholds[region - 1]
            };
            let hi = if region == m - 1 {
                f64::INFINITY
            } else {
                thresholds[region]
            };
            let hamming = tx_bits
                .iter()
                .zip(rx_bits.iter())
                .filter(|(a, b)| a != b)
                .count();
            if hamming == 0 {
                continue;
            }
            let p_lo = if lo.is_infinite() {
                1.0
            } else {
                q_function((lo - a) / sigma)
            };
            let p_hi = if hi.is_infinite() {
                0.0
            } else {
                q_function((hi - a) / sigma)
            };
            bit_errors += hamming as f64 * (p_lo - p_hi);
        }
    }
    bit_errors / (m as f64 * bits_per_level as f64)
}

fn per_axis_sigma(snr_db: f64) -> f64 {
    // Total complex noise power nv splits evenly between I and Q.
    (wlan_dsp::math::db_to_lin(-snr_db) / 2.0).sqrt()
}

/// Exact BPSK bit error rate over AWGN (equals `Q(√(2·SNR))`).
pub fn ber_bpsk(snr_db: f64) -> f64 {
    // BPSK uses the I axis only; unit symbol power sits entirely there.
    pam_gray_ber(PAM2, 1.0, per_axis_sigma(snr_db))
}

/// Exact QPSK bit error rate over AWGN (equals `Q(√SNR)`): each axis is
/// BPSK at half power.
pub fn ber_qpsk(snr_db: f64) -> f64 {
    pam_gray_ber(PAM2, 1.0 / 2f64.sqrt(), per_axis_sigma(snr_db))
}

/// Exact Gray-coded 16-QAM bit error rate over AWGN.
pub fn ber_qam16(snr_db: f64) -> f64 {
    pam_gray_ber(PAM4, 1.0 / 10f64.sqrt(), per_axis_sigma(snr_db))
}

/// Exact Gray-coded 64-QAM bit error rate over AWGN.
pub fn ber_qam64(snr_db: f64) -> f64 {
    pam_gray_ber(PAM8, 1.0 / 42f64.sqrt(), per_axis_sigma(snr_db))
}

/// Analytic uncoded-subcarrier BER for a constellation identified by
/// its bits per carrier (1 = BPSK, 2 = QPSK, 4 = 16-QAM, 6 = 64-QAM).
///
/// # Panics
///
/// Panics on any other bit count.
pub fn ber_uncoded(bits_per_carrier: usize, snr_db: f64) -> f64 {
    match bits_per_carrier {
        1 => ber_bpsk(snr_db),
        2 => ber_qpsk(snr_db),
        4 => ber_qam16(snr_db),
        6 => ber_qam64(snr_db),
        n => panic!("no 802.11a constellation carries {n} bits"),
    }
}

/// Wilson score interval for an observed proportion, with configurable
/// normal quantile `z` (1.96 → 95 %, 3.29 → 99.9 %).
///
/// Returns `(0, 1)` for an empty sample.
pub fn wilson_interval(errors: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = errors as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_dsp::math::q_function;

    #[test]
    fn bpsk_matches_textbook_form() {
        for snr_db in [-2.0, 0.0, 4.0, 8.0, 10.0] {
            let snr = wlan_dsp::math::db_to_lin(snr_db);
            let expect = q_function((2.0 * snr).sqrt());
            let got = ber_bpsk(snr_db);
            assert!((got - expect).abs() < 1e-12, "{snr_db} dB: {got} {expect}");
        }
    }

    #[test]
    fn qpsk_matches_textbook_form() {
        for snr_db in [0.0, 5.0, 10.0] {
            let snr = wlan_dsp::math::db_to_lin(snr_db);
            let expect = q_function(snr.sqrt());
            let got = ber_qpsk(snr_db);
            assert!((got - expect).abs() < 1e-12, "{snr_db} dB: {got} {expect}");
        }
    }

    #[test]
    fn qam16_matches_exact_gray_expression() {
        // Exact Gray 16-QAM: Pb = (3Q₁ + 2Q₃ − Q₅)/4, Qₙ = Q(n·√(SNR/5)).
        for snr_db in [5.0, 10.0, 15.0, 20.0] {
            let snr = wlan_dsp::math::db_to_lin(snr_db);
            let q = |n: f64| q_function(n * (snr / 5.0).sqrt());
            let expect = (3.0 * q(1.0) + 2.0 * q(3.0) - q(5.0)) / 4.0;
            let got = ber_qam16(snr_db);
            assert!((got - expect).abs() < 1e-12, "{snr_db} dB: {got} {expect}");
        }
    }

    #[test]
    fn qam64_high_snr_asymptote() {
        // At high SNR only nearest-neighbor errors survive:
        // Pb → (7/12)·Q(√(SNR/21)).
        let snr_db = 26.0;
        let snr = wlan_dsp::math::db_to_lin(snr_db);
        let asym = 7.0 / 12.0 * q_function((snr / 21.0).sqrt());
        let got = ber_qam64(snr_db);
        assert!((got - asym).abs() / asym < 1e-3, "{got} vs {asym}");
    }

    #[test]
    fn curves_are_ordered_and_monotone() {
        let mut prev = [1.0f64; 4];
        for snr_db in [0.0, 4.0, 8.0, 12.0, 16.0, 20.0] {
            let cur = [
                ber_bpsk(snr_db),
                ber_qpsk(snr_db),
                ber_qam16(snr_db),
                ber_qam64(snr_db),
            ];
            // Denser constellations are strictly worse at equal SNR.
            assert!(cur[0] < cur[1] && cur[1] < cur[2] && cur[2] < cur[3]);
            for (p, c) in prev.iter().zip(cur.iter()) {
                assert!(c < p, "BER must fall with SNR");
            }
            prev = cur;
        }
    }

    #[test]
    fn wilson_matches_ber_meter_at_z196() {
        let mut m = crate::BerMeter::new();
        let tx = vec![0u8; 10_000];
        let mut rx = vec![0u8; 10_000];
        for r in rx.iter_mut().step_by(100) {
            *r = 1;
        }
        m.update_bits(&tx, &rx);
        let (lo, hi) = m.confidence_interval();
        let (lo2, hi2) = wilson_interval(m.errors(), m.bits(), 1.96);
        assert!((lo - lo2).abs() < 1e-15 && (hi - hi2).abs() < 1e-15);
    }

    #[test]
    fn wilson_widens_with_z_and_handles_empty() {
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        let narrow = wilson_interval(100, 10_000, 1.96);
        let wide = wilson_interval(100, 10_000, 3.29);
        assert!(wide.0 < narrow.0 && narrow.1 < wide.1);
        assert!(narrow.0 < 0.01 && 0.01 < narrow.1);
    }
}
