//! Measurement infrastructure for the WLAN verification flow.
//!
//! Two families, mirroring the paper's methodology:
//!
//! * **System-level** (§5): [`ber::BerMeter`] (the "safest information
//!   about the system performance") and [`evm::EvmMeter`].
//! * **RF characterization** (§4.2, the SpectreRF role): two-tone IM3 /
//!   [`twotone::measure_iip3`], gain-compression sweep
//!   [`compression::measure_p1db`], and output-noise-based
//!   [`noisefigure::measure_noise_figure`] — applied to the behavioral
//!   models to verify that they meet their specs before system
//!   simulation ("verify the RF system separately using RF simulation
//!   techniques").
//!
//! Plus [`analytic`]: exact closed-form AWGN BER curves and Wilson
//! acceptance bands, the ground truth the conformance suite holds the
//! Monte-Carlo sweeps against.

pub mod acpr;
pub mod analytic;
pub mod ber;
pub mod compression;
pub mod desense;
pub mod evm;
pub mod montecarlo;
pub mod noisefigure;
pub mod twotone;

pub use ber::BerMeter;
pub use evm::EvmMeter;
pub use montecarlo::{run_sharded, EarlyStop, McAccumulator, McOutcome, McPlan};
