//! Blocker desensitization: a strong out-of-band interferer drives a
//! nonlinear front end into compression and reduces the gain seen by the
//! (weak) wanted signal — the §2.2 "robustness against interferer"
//! requirement, measured the way an RF lab would.

use wlan_dsp::goertzel::tone_power_dbm;
use wlan_dsp::Complex;
use wlan_units::{Db, Dbm};

/// One desensitization sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesensePoint {
    /// Blocker power.
    pub blocker_dbm: Dbm,
    /// Gain seen by the wanted tone.
    pub wanted_gain_db: Db,
}

/// Result of a desensitization measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct DesenseMeasurement {
    /// Gain with no blocker.
    pub clean_gain_db: Db,
    /// Blocker level causing 1 dB of gain loss on the wanted signal,
    /// if reached.
    pub desense_1db_dbm: Option<Dbm>,
    /// The sweep.
    pub sweep: Vec<DesensePoint>,
}

/// Sweeps a blocker at `f_blocker` from `start_dbm` to `stop_dbm` while a
/// weak wanted tone sits at `f_wanted` (at `wanted_dbm`), measuring the
/// wanted tone's gain through the device.
///
/// # Panics
///
/// Panics on a degenerate sweep or tones beyond Nyquist.
#[allow(clippy::too_many_arguments)]
pub fn measure_desense<F>(
    device: &mut F,
    f_wanted: f64,
    wanted_dbm: Dbm,
    f_blocker: f64,
    start_dbm: Dbm,
    stop_dbm: Dbm,
    step_db: Db,
    sample_rate_hz: f64,
    samples_per_point: usize,
) -> DesenseMeasurement
where
    F: FnMut(&[Complex]) -> Vec<Complex>,
{
    assert!(stop_dbm > start_dbm && step_db > Db::ZERO, "bad sweep");
    assert!(
        f_wanted.abs() < sample_rate_hz / 2.0 && f_blocker.abs() < sample_rate_hz / 2.0,
        "tones beyond Nyquist"
    );
    let a_w = wanted_dbm.to_amplitude().0;
    let tail_len = samples_per_point - samples_per_point / 4;
    let grid = sample_rate_hz / tail_len as f64;
    let fw = (f_wanted / grid).round() * grid;
    let fb = (f_blocker / grid).round() * grid;

    let run_point = |device: &mut F, blocker_dbm: Option<Dbm>| -> Db {
        let a_b = blocker_dbm.map(|p| p.to_amplitude().0);
        let x: Vec<Complex> = (0..samples_per_point)
            .map(|n| {
                let t = n as f64 / sample_rate_hz;
                let mut v = Complex::from_polar(a_w, 2.0 * std::f64::consts::PI * fw * t);
                if let Some(ab) = a_b {
                    v += Complex::from_polar(ab, 2.0 * std::f64::consts::PI * fb * t);
                }
                v
            })
            .collect();
        let y = device(&x);
        Dbm(tone_power_dbm(&y[y.len() - tail_len..], fw, sample_rate_hz)) - wanted_dbm
    };

    let clean_gain_db = run_point(device, None);
    let mut sweep = Vec::new();
    let mut p = start_dbm;
    while p.0 <= stop_dbm.0 + 1e-9 {
        sweep.push(DesensePoint {
            blocker_dbm: p,
            wanted_gain_db: run_point(device, Some(p)),
        });
        p += step_db;
    }
    let mut desense = None;
    let threshold = clean_gain_db - Db(1.0);
    for w in sweep.windows(2) {
        if w[0].wanted_gain_db >= threshold && w[1].wanted_gain_db < threshold {
            let t =
                (threshold - w[0].wanted_gain_db).0 / (w[1].wanted_gain_db - w[0].wanted_gain_db).0;
            desense = Some(Dbm(
                w[0].blocker_dbm.0 + t * (w[1].blocker_dbm - w[0].blocker_dbm).0
            ));
            break;
        }
    }
    DesenseMeasurement {
        clean_gain_db,
        desense_1db_dbm: desense,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_rf::nonlinearity::Nonlinearity;

    #[test]
    fn rapp_desense_tracks_p1db() {
        // For a limiter, the blocker causing 1 dB desense on a weak
        // wanted tone sits near the device's own P1dB.
        let p1 = -15.0;
        let nl = Nonlinearity::rapp(Dbm(p1));
        let mut dev =
            |x: &[Complex]| -> Vec<Complex> { x.iter().map(|&u| nl.apply(u, 3.0)).collect() };
        let m = measure_desense(
            &mut dev,
            1e6,
            Dbm(-60.0),
            15e6,
            Dbm(-35.0),
            Dbm(5.0),
            Db(1.0),
            80e6,
            8000,
        );
        assert!(
            (m.clean_gain_db.0 - 9.54).abs() < 0.1,
            "gain {}",
            m.clean_gain_db
        );
        let d = m.desense_1db_dbm.expect("desense reached");
        assert!(
            (d.0 - p1).abs() < 4.0,
            "1 dB desense at {d} vs P1dB {p1} dBm"
        );
    }

    #[test]
    fn linear_device_never_desensitizes() {
        let mut dev = |x: &[Complex]| -> Vec<Complex> { x.iter().map(|&u| u * 2.0).collect() };
        let m = measure_desense(
            &mut dev,
            1e6,
            Dbm(-60.0),
            15e6,
            Dbm(-30.0),
            Dbm(0.0),
            Db(3.0),
            80e6,
            8000,
        );
        assert!(m.desense_1db_dbm.is_none());
        for p in &m.sweep {
            assert!((p.wanted_gain_db - m.clean_gain_db).0.abs() < 0.1);
        }
    }

    #[test]
    fn gain_monotonically_drops_with_blocker() {
        let nl = Nonlinearity::rapp(Dbm(-20.0));
        let mut dev =
            |x: &[Complex]| -> Vec<Complex> { x.iter().map(|&u| nl.apply(u, 1.0)).collect() };
        let m = measure_desense(
            &mut dev,
            1e6,
            Dbm(-60.0),
            10e6,
            Dbm(-40.0),
            Dbm(0.0),
            Db(4.0),
            80e6,
            8000,
        );
        for w in m.sweep.windows(2) {
            assert!(
                w[1].wanted_gain_db <= w[0].wanted_gain_db + Db(0.05),
                "{:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    #[should_panic]
    fn bad_sweep_panics() {
        let mut dev = |x: &[Complex]| -> Vec<Complex> { x.to_vec() };
        let _ = measure_desense(
            &mut dev,
            1e6,
            Dbm(-60.0),
            10e6,
            Dbm(0.0),
            Dbm(-10.0),
            Db(1.0),
            80e6,
            100,
        );
    }
}
