//! Behavioral netlist format.
//!
//! One instance per line:
//!
//! ```text
//! # double conversion receiver
//! lna1  lna     rf  n1  gain=15 nf=3 p1db=-5
//! mix1  mixer   n1  n2  gain=8  nf=9
//! hpf1  hpf     n2  n3  fc=150k order=2
//! mix2  mixer   n3  n4  gain=6  nf=11 dc=-45
//! lpf1  cheb_lp n4  out order=5 ripple=0.5 edge=10M
//! ```
//!
//! Fields: instance name, model name, input node, output node, then
//! `key=value` parameters. Values accept engineering suffixes
//! (`f p n u m k M G T`). Comments start with `#` or `//`.

use std::collections::BTreeMap;

/// One parsed instance line.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name (unique).
    pub name: String,
    /// Device model name.
    pub model: String,
    /// Input node.
    pub input: String,
    /// Output node.
    pub output: String,
    /// Parameters.
    pub params: BTreeMap<String, f64>,
    /// Source line number (1-based) for diagnostics.
    pub line: usize,
}

impl Instance {
    /// A parameter value, or `default` if absent.
    pub fn param_or(&self, key: &str, default: f64) -> f64 {
        self.params.get(key).copied().unwrap_or(default)
    }

    /// A required parameter.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MissingParam`] when absent.
    pub fn param(&self, key: &str) -> Result<f64, NetlistError> {
        self.params
            .get(key)
            .copied()
            .ok_or_else(|| NetlistError::MissingParam {
                instance: self.name.clone(),
                param: key.to_string(),
                line: self.line,
            })
    }
}

/// A parsed netlist.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Netlist {
    /// Instances in file order.
    pub instances: Vec<Instance>,
}

/// Netlist parse/validation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A line did not have at least four fields.
    Malformed {
        /// Line number.
        line: usize,
        /// Line content.
        text: String,
    },
    /// A numeric value failed to parse.
    BadValue {
        /// Line number.
        line: usize,
        /// The failing token.
        token: String,
    },
    /// Duplicate instance name.
    DuplicateInstance {
        /// The duplicated name.
        name: String,
        /// Line number of the duplicate.
        line: usize,
    },
    /// A required parameter is missing.
    MissingParam {
        /// Instance name.
        instance: String,
        /// Missing key.
        param: String,
        /// Line number.
        line: usize,
    },
    /// Unknown device model at elaboration time.
    UnknownModel {
        /// The model name.
        model: String,
        /// Line number.
        line: usize,
    },
    /// The instances do not form a single chain from `input` to `output`.
    BrokenChain {
        /// Description of the break.
        detail: String,
    },
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::Malformed { line, text } => {
                write!(f, "line {line}: malformed instance line '{text}'")
            }
            NetlistError::BadValue { line, token } => {
                write!(f, "line {line}: cannot parse value '{token}'")
            }
            NetlistError::DuplicateInstance { name, line } => {
                write!(f, "line {line}: duplicate instance '{name}'")
            }
            NetlistError::MissingParam {
                instance,
                param,
                line,
            } => write!(
                f,
                "line {line}: instance '{instance}' missing parameter '{param}'"
            ),
            NetlistError::UnknownModel { model, line } => {
                write!(f, "line {line}: unknown device model '{model}'")
            }
            NetlistError::BrokenChain { detail } => write!(f, "broken signal chain: {detail}"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// Parses a value with an optional engineering suffix.
pub fn parse_value(token: &str) -> Option<f64> {
    let (mantissa, mult) = match token.chars().last()? {
        'f' => (&token[..token.len() - 1], 1e-15),
        'p' => (&token[..token.len() - 1], 1e-12),
        'n' => (&token[..token.len() - 1], 1e-9),
        'u' => (&token[..token.len() - 1], 1e-6),
        'm' => (&token[..token.len() - 1], 1e-3),
        'k' => (&token[..token.len() - 1], 1e3),
        'M' => (&token[..token.len() - 1], 1e6),
        'G' => (&token[..token.len() - 1], 1e9),
        'T' => (&token[..token.len() - 1], 1e12),
        _ => (token, 1.0),
    };
    mantissa.parse::<f64>().ok().map(|v| v * mult)
}

impl Netlist {
    /// Parses netlist text.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] encountered.
    pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
        let mut instances: Vec<Instance> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split("//").next().unwrap_or("");
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() < 4 {
                return Err(NetlistError::Malformed {
                    line: line_no,
                    text: line.to_string(),
                });
            }
            let name = fields[0].to_string();
            if instances.iter().any(|i| i.name == name) {
                return Err(NetlistError::DuplicateInstance {
                    name,
                    line: line_no,
                });
            }
            let mut params = BTreeMap::new();
            for tok in &fields[4..] {
                let (k, v) = tok.split_once('=').ok_or(NetlistError::Malformed {
                    line: line_no,
                    text: (*tok).to_string(),
                })?;
                let value = parse_value(v).ok_or(NetlistError::BadValue {
                    line: line_no,
                    token: (*v).to_string(),
                })?;
                params.insert(k.to_string(), value);
            }
            instances.push(Instance {
                name,
                model: fields[1].to_string(),
                input: fields[2].to_string(),
                output: fields[3].to_string(),
                params,
                line: line_no,
            });
        }
        Ok(Netlist { instances })
    }

    /// Sets (or adds) a parameter on a named instance, for programmatic
    /// netlist sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BrokenChain`] with a description if the
    /// instance does not exist.
    pub fn set_param(&mut self, instance: &str, key: &str, value: f64) -> Result<(), NetlistError> {
        let inst = self
            .instances
            .iter_mut()
            .find(|i| i.name == instance)
            .ok_or_else(|| NetlistError::BrokenChain {
                detail: format!("no instance named '{instance}'"),
            })?;
        inst.params.insert(key.to_string(), value);
        Ok(())
    }

    /// Renders the netlist back to its text form.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for i in &self.instances {
            let _ = write!(out, "{} {} {} {}", i.name, i.model, i.input, i.output);
            for (k, v) in &i.params {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
        }
        out
    }

    /// Orders the instances into a single chain from node `input` to
    /// node `output`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BrokenChain`] if the chain does not
    /// connect or branches.
    pub fn chain(&self, input: &str, output: &str) -> Result<Vec<&Instance>, NetlistError> {
        let mut order = Vec::new();
        let mut node = input.to_string();
        let mut remaining: Vec<&Instance> = self.instances.iter().collect();
        while node != output {
            let pos = remaining
                .iter()
                .position(|i| i.input == node)
                .ok_or_else(|| NetlistError::BrokenChain {
                    detail: format!("no instance drives from node '{node}'"),
                })?;
            let inst = remaining.remove(pos);
            if remaining.iter().any(|i| i.input == inst.input) {
                return Err(NetlistError::BrokenChain {
                    detail: format!("node '{}' fans out (chain must be linear)", inst.input),
                });
            }
            node = inst.output.clone();
            order.push(inst);
            if order.len() > self.instances.len() {
                return Err(NetlistError::BrokenChain {
                    detail: "cycle detected".to_string(),
                });
            }
        }
        if !remaining.is_empty() {
            return Err(NetlistError::BrokenChain {
                detail: format!(
                    "{} instance(s) not on the {input}→{output} path",
                    remaining.len()
                ),
            });
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "\
# receiver front end
lna1  lna     rf  n1  gain=15 nf=3 p1db=-5
mix1  mixer   n1  n2  gain=8  nf=9   // first conversion
hpf1  hpf     n2  n3  fc=150k order=2
lpf1  cheb_lp n3  out order=5 ripple=0.5 edge=10M
";

    #[test]
    fn parses_example() {
        let n = Netlist::parse(EXAMPLE).expect("parses");
        assert_eq!(n.instances.len(), 4);
        let lna = &n.instances[0];
        assert_eq!(lna.name, "lna1");
        assert_eq!(lna.model, "lna");
        assert_eq!(lna.input, "rf");
        assert_eq!(lna.param("gain").unwrap(), 15.0);
        assert_eq!(lna.param_or("missing", 7.0), 7.0);
        let hpf = &n.instances[2];
        assert_eq!(hpf.param("fc").unwrap(), 150e3);
        let lpf = &n.instances[3];
        assert_eq!(lpf.param("edge").unwrap(), 10e6);
    }

    #[test]
    fn engineering_suffixes() {
        assert_eq!(parse_value("1k"), Some(1e3));
        assert_eq!(parse_value("2.5M"), Some(2.5e6));
        assert_eq!(parse_value("-45"), Some(-45.0));
        assert!((parse_value("100n").unwrap() - 100e-9).abs() < 1e-15);
        assert!((parse_value("3u").unwrap() - 3e-6).abs() < 1e-12);
        assert_eq!(parse_value("junk"), None);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let n = Netlist::parse("# only comments\n\n// more\n").expect("ok");
        assert!(n.instances.is_empty());
    }

    #[test]
    fn malformed_line_rejected() {
        let err = Netlist::parse("foo bar\n").unwrap_err();
        assert!(matches!(err, NetlistError::Malformed { line: 1, .. }));
    }

    #[test]
    fn duplicate_instance_rejected() {
        let text = "a amp n1 n2 gain=1\na amp n2 n3 gain=1\n";
        assert!(matches!(
            Netlist::parse(text).unwrap_err(),
            NetlistError::DuplicateInstance { .. }
        ));
    }

    #[test]
    fn bad_value_rejected() {
        let err = Netlist::parse("a amp n1 n2 gain=abc\n").unwrap_err();
        assert!(matches!(err, NetlistError::BadValue { .. }));
    }

    #[test]
    fn chain_orders_instances() {
        let n = Netlist::parse(EXAMPLE).unwrap();
        let chain = n.chain("rf", "out").expect("chains");
        let names: Vec<&str> = chain.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["lna1", "mix1", "hpf1", "lpf1"]);
    }

    #[test]
    fn set_param_and_roundtrip() {
        let mut n = Netlist::parse(EXAMPLE).unwrap();
        n.set_param("lpf1", "edge", 6.5e6).expect("instance exists");
        n.set_param("lna1", "nf", 4.0).expect("adds new key");
        assert!(n.set_param("ghost", "x", 1.0).is_err());
        // Text roundtrip preserves the values.
        let reparsed = Netlist::parse(&n.to_text()).expect("rendered text parses");
        let lpf = reparsed
            .instances
            .iter()
            .find(|i| i.name == "lpf1")
            .unwrap();
        assert_eq!(lpf.param("edge").unwrap(), 6.5e6);
        let lna = reparsed
            .instances
            .iter()
            .find(|i| i.name == "lna1")
            .unwrap();
        assert_eq!(lna.param("nf").unwrap(), 4.0);
    }

    #[test]
    fn chain_detects_gap() {
        let text = "a amp rf n1 gain=1\nb amp n2 out gain=1\n";
        let n = Netlist::parse(text).unwrap();
        assert!(matches!(
            n.chain("rf", "out"),
            Err(NetlistError::BrokenChain { .. })
        ));
    }

    #[test]
    fn chain_detects_stray_instance() {
        let text = "a amp rf out gain=1\nb amp x y gain=1\n";
        let n = Netlist::parse(text).unwrap();
        assert!(matches!(
            n.chain("rf", "out"),
            Err(NetlistError::BrokenChain { .. })
        ));
    }
}
