//! The co-simulation bridge: runs the elaborated analog receiver inside
//! the discrete-time system simulation.
//!
//! Input frames arrive at the system (oversampled RF) rate; each sample
//! is held (ZOH) while the analog engine takes `analog_osr` RK4 sub-steps
//! through every device; the device-chain output is sampled once per
//! system sample, then AGC, ADC and decimation produce the 20 Msps
//! stream for the DSP receiver — interface-compatible with
//! `wlan_rf::DoubleConversionReceiver` so the link testbench can swap
//! abstraction levels.

use crate::devices::AnalogDevice;
use crate::elaborate::{elaborate, DEFAULT_RECEIVER_NETLIST};
use crate::netlist::{Netlist, NetlistError};
use wlan_dsp::iir::DcBlocker;
use wlan_dsp::Complex;
use wlan_rf::adc::Adc;
use wlan_rf::agc::{Agc, AgcMode};

/// Co-simulated double-conversion receiver.
pub struct CosimReceiver {
    devices: Vec<Box<dyn AnalogDevice>>,
    analog_osr: usize,
    dt: f64,
    agc: Agc,
    adc: Adc,
    dc_correction: DcBlocker,
    decimation: usize,
    decim_phase: usize,
    steps_taken: u64,
    /// Analog-rate working buffer reused across frames (DESIGN §10
    /// scratch-arena discipline: capacity survives between packets).
    analog: Vec<Complex>,
    /// ZOH-expanded sub-step buffer for the chunked device-major path
    /// (bounded at `COSIM_CHUNK · analog_osr` samples).
    expanded: Vec<Complex>,
}

/// System samples per device-major chunk: large enough that the per-chunk
/// dyn dispatch (one per device instead of one per sub-step) vanishes,
/// small enough that the `chunk · analog_osr` expanded buffer stays
/// cache-resident even at Table 2's `analog_osr = 64`.
const COSIM_CHUNK: usize = 1024;

impl std::fmt::Debug for CosimReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CosimReceiver")
            .field(
                "devices",
                &self.devices.iter().map(|d| d.name()).collect::<Vec<_>>(),
            )
            .field("analog_osr", &self.analog_osr)
            .field("dt", &self.dt)
            .finish()
    }
}

impl CosimReceiver {
    /// Builds a co-simulated receiver from netlist text.
    ///
    /// * `sample_rate_hz` — system (input) rate, e.g. 80 MHz
    /// * `analog_osr` — analog sub-steps per system sample (≥ 1)
    /// * `decimation` — output decimation to the DSP rate (e.g. 4)
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if the netlist fails to parse or
    /// elaborate.
    pub fn from_netlist(
        text: &str,
        sample_rate_hz: f64,
        analog_osr: usize,
        decimation: usize,
    ) -> Result<Self, NetlistError> {
        assert!(analog_osr >= 1, "analog_osr must be >= 1");
        let netlist = Netlist::parse(text)?;
        let devices = elaborate(&netlist, "rf", "out")?;
        Ok(CosimReceiver {
            devices,
            analog_osr,
            dt: 1.0 / (sample_rate_hz * analog_osr as f64),
            agc: Agc::new(AgcMode::Ideal, 1.0),
            adc: Adc::new(10, 4.0),
            dc_correction: DcBlocker::with_cutoff(40e3, sample_rate_hz / decimation as f64),
            decimation,
            decim_phase: 0,
            steps_taken: 0,
            analog: Vec::new(),
            expanded: Vec::new(),
        })
    }

    /// Builds the default receiver (paper Fig. 2) with a custom channel
    /// filter edge — the co-sim counterpart of the Fig. 5 sweep.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] on elaboration failure (should not
    /// happen for the built-in netlist).
    pub fn with_filter_edge(
        edge_hz: f64,
        sample_rate_hz: f64,
        analog_osr: usize,
        decimation: usize,
    ) -> Result<Self, NetlistError> {
        let mut netlist = Netlist::parse(DEFAULT_RECEIVER_NETLIST)?;
        netlist.set_param("lpf1", "edge", edge_hz)?;
        Self::from_netlist(&netlist.to_text(), sample_rate_hz, analog_osr, decimation)
    }

    /// Builds the default receiver.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] on elaboration failure.
    pub fn new(
        sample_rate_hz: f64,
        analog_osr: usize,
        decimation: usize,
    ) -> Result<Self, NetlistError> {
        Self::from_netlist(
            DEFAULT_RECEIVER_NETLIST,
            sample_rate_hz,
            analog_osr,
            decimation,
        )
    }

    /// Analog sub-steps executed so far (the cost driver behind the
    /// paper's Table 2 runtime ratio).
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Device names in chain order.
    pub fn device_names(&self) -> Vec<&str> {
        self.devices.iter().map(|d| d.name()).collect()
    }

    /// Processes an oversampled-rate frame, returning the decimated
    /// DSP-rate output.
    pub fn process(&mut self, x: &[Complex]) -> Vec<Complex> {
        let mut out = Vec::new();
        self.process_into(x, &mut out);
        out
    }

    /// [`CosimReceiver::process`] into a caller-owned buffer. The only
    /// per-call heap traffic is capacity growth on first use: the
    /// analog-rate intermediate lives in a member scratch buffer, the
    /// AGC levels it in place, and the ADC quantizes only the samples
    /// the decimator keeps (it is stateless per sample, so skipping
    /// dropped samples is bit-identical to converting the whole frame).
    ///
    /// The analog engine runs *device-major over chunks*: a chunk of
    /// system samples is ZOH-expanded to the sub-step rate once, then
    /// each device advances over the whole expanded block with a single
    /// virtual call ([`AnalogDevice::step_block`]). Every device is a
    /// per-sample state machine seeing the same input sequence either
    /// way, so this is bit-identical to the sample-by-sample reference
    /// loop ([`CosimReceiver::process_into_sample_by_sample`], pinned by
    /// the block-vs-sample differential tests).
    pub fn process_into(&mut self, x: &[Complex], out: &mut Vec<Complex>) {
        let osr = self.analog_osr;
        self.analog.clear();
        self.analog.reserve(x.len());
        let mut expanded = std::mem::take(&mut self.expanded);
        for chunk in x.chunks(COSIM_CHUNK) {
            // ZOH: each system sample held over its `osr` sub-steps.
            expanded.clear();
            expanded.reserve(chunk.len() * osr);
            for &u in chunk {
                for _ in 0..osr {
                    expanded.push(u);
                }
            }
            for d in self.devices.iter_mut() {
                d.step_block(&mut expanded, self.dt);
            }
            self.steps_taken += (chunk.len() * osr) as u64;
            // The chain output is sampled once per system sample: the
            // last sub-step of each hold interval.
            for i in 0..chunk.len() {
                self.analog.push(expanded[(i + 1) * osr - 1]);
            }
        }
        self.expanded = expanded;
        self.agc.process_in_place(&mut self.analog);
        // Plain sample picking + digital DC correction, matching the
        // baseband front end.
        out.clear();
        out.reserve(self.analog.len() / self.decimation + 1);
        for &s in &self.analog {
            if self.decim_phase == 0 {
                out.push(self.dc_correction.push(self.adc.convert(s)));
            }
            self.decim_phase = (self.decim_phase + 1) % self.decimation;
        }
    }

    /// The original sample-by-sample analog loop: one ZOH input per
    /// sub-step, one dyn dispatch per device per sub-step. Kept as the
    /// bit-identity reference for the chunked device-major path above —
    /// not used by the simulation itself.
    #[doc(hidden)]
    pub fn process_into_sample_by_sample(&mut self, x: &[Complex], out: &mut Vec<Complex>) {
        self.analog.clear();
        self.analog.reserve(x.len());
        for &u in x {
            let mut y = Complex::ZERO;
            for _ in 0..self.analog_osr {
                let mut v = u; // ZOH input over the sub-steps
                for d in self.devices.iter_mut() {
                    v = d.step(v, self.dt);
                }
                y = v;
                self.steps_taken += 1;
            }
            self.analog.push(y);
        }
        self.agc.process_in_place(&mut self.analog);
        out.clear();
        out.reserve(self.analog.len() / self.decimation + 1);
        for &s in &self.analog {
            if self.decim_phase == 0 {
                out.push(self.dc_correction.push(self.adc.convert(s)));
            }
            self.decim_phase = (self.decim_phase + 1) % self.decimation;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_dsp::complex::mean_power;
    use wlan_dsp::goertzel::tone_power;
    use wlan_dsp::math::dbm_to_watts;
    use wlan_rf::receiver::{DoubleConversionReceiver, RfConfig};

    fn tone_dbm(f: f64, fs: f64, dbm: f64, n: usize) -> Vec<Complex> {
        let a = (2.0 * dbm_to_watts(dbm)).sqrt();
        (0..n)
            .map(|i| Complex::from_polar(a, 2.0 * std::f64::consts::PI * f * i as f64 / fs))
            .collect()
    }

    #[test]
    fn builds_default_receiver() {
        let rx = CosimReceiver::new(80e6, 4, 4).expect("builds");
        assert_eq!(
            rx.device_names(),
            vec!["lna1", "mix1", "hpf1", "mix2", "lpf1"]
        );
    }

    #[test]
    fn output_leveled_and_decimated() {
        let mut rx = CosimReceiver::new(80e6, 4, 4).unwrap();
        let x = tone_dbm(2e6, 80e6, -50.0, 16_000);
        let y = rx.process(&x);
        assert_eq!(y.len(), 4000);
        let p = mean_power(&y[1000..]);
        assert!((p - 1.0).abs() < 0.2, "power {p}");
        assert_eq!(rx.steps_taken(), 64_000);
    }

    #[test]
    fn matches_baseband_receiver_on_clean_tone() {
        // Noise off in the baseband receiver → both abstraction levels
        // should agree on the tone-to-total power fraction.
        let fs = 80e6;
        let x = tone_dbm(3e6, fs, -45.0, 40_000);

        let mut cfg = RfConfig {
            noise_enabled: false,
            ..RfConfig::default()
        };
        cfg.mixer2.iq_gain_imbalance_db = wlan_units::Db(0.0);
        cfg.mixer2.iq_phase_imbalance_deg = 0.0;
        cfg.mixer1.lo_linewidth_hz = wlan_units::Hz(0.0);
        cfg.mixer2.lo_linewidth_hz = wlan_units::Hz(0.0);
        let mut bb = DoubleConversionReceiver::new(cfg, 1);
        let yb = bb.process(&x);

        let mut cs = CosimReceiver::new(fs, 8, 4).unwrap();
        let yc = cs.process(&x);

        // Tone fraction: tone power is A²/2 while mean power is A², so
        // scale by 2 for a 0..1 fraction.
        let fb = 2.0 * tone_power(&yb[5000..], 3e6, 20e6) / mean_power(&yb[5000..]);
        let fc = 2.0 * tone_power(&yc[5000..], 3e6, 20e6) / mean_power(&yc[5000..]);
        assert!(fb > 0.8, "baseband tone fraction {fb}");
        assert!(fc > 0.8, "cosim tone fraction {fc}");
    }

    #[test]
    fn adjacent_channel_rejected_like_baseband() {
        let fs = 80e6;
        let n = 40_000;
        let x: Vec<Complex> = tone_dbm(2e6, fs, -50.0, n)
            .iter()
            .zip(tone_dbm(20e6, fs, -34.0, n))
            .map(|(a, b)| *a + b)
            .collect();
        let mut cs = CosimReceiver::new(fs, 8, 4).unwrap();
        let y = cs.process(&x);
        let tail = &y[y.len() / 2..];
        let want = tone_power(tail, 2e6, 20e6);
        let adj = tone_power(tail, 0.0, 20e6); // 20 MHz aliases to 0 after ÷4
        assert!(want > 20.0 * adj, "want {want} vs adjacent {adj}");
    }

    #[test]
    fn narrow_filter_netlist_variant() {
        let fs = 80e6;
        let x = tone_dbm(7e6, fs, -40.0, 30_000);
        let mut wide = CosimReceiver::with_filter_edge(12e6, fs, 4, 4).unwrap();
        let mut narrow = CosimReceiver::with_filter_edge(3e6, fs, 4, 4).unwrap();
        let yw = wide.process(&x);
        let yn = narrow.process(&x);
        let fw = 2.0 * tone_power(&yw[4000..], 7e6, 20e6) / mean_power(&yw[4000..]);
        let fn_ = 2.0 * tone_power(&yn[4000..], 7e6, 20e6) / mean_power(&yn[4000..]);
        assert!(fw > 0.5, "wide {fw}");
        assert!(fn_ < fw, "narrow {fn_} !< wide {fw}");
    }

    #[test]
    fn process_into_bit_identical_to_process() {
        let x = tone_dbm(2e6, 80e6, -50.0, 8_000);
        let mut a = CosimReceiver::new(80e6, 4, 4).unwrap();
        let mut b = CosimReceiver::new(80e6, 4, 4).unwrap();
        let mut out = Vec::new();
        // Two frames, so filter/AGC/decimator state carries across the
        // buffer-reusing path exactly like the allocating one.
        for chunk in x.chunks(3_000) {
            let ya = a.process(chunk);
            b.process_into(chunk, &mut out);
            assert_eq!(ya, out);
        }
        assert_eq!(a.steps_taken(), b.steps_taken());
    }

    #[test]
    fn chunked_path_bit_identical_to_sample_by_sample() {
        // Frames straddle COSIM_CHUNK (ragged last chunk) and carry
        // filter/AGC/decimator state across calls.
        let x = tone_dbm(2e6, 80e6, -45.0, 5_000);
        let mut a = CosimReceiver::new(80e6, 4, 4).unwrap();
        let mut b = CosimReceiver::new(80e6, 4, 4).unwrap();
        let (mut ya, mut yb) = (Vec::new(), Vec::new());
        for chunk in x.chunks(1_500) {
            a.process_into(chunk, &mut ya);
            b.process_into_sample_by_sample(chunk, &mut yb);
            assert_eq!(ya.len(), yb.len());
            for (s, t) in ya.iter().zip(&yb) {
                assert_eq!(s.re.to_bits(), t.re.to_bits());
                assert_eq!(s.im.to_bits(), t.im.to_bits());
            }
        }
        assert_eq!(a.steps_taken(), b.steps_taken());
    }

    #[test]
    fn bad_netlist_reports_error() {
        assert!(CosimReceiver::from_netlist("x y\n", 80e6, 2, 4).is_err());
    }

    #[test]
    fn cosim_slower_than_baseband() {
        use std::time::Instant;
        let fs = 80e6;
        let x = tone_dbm(1e6, fs, -50.0, 40_000);
        let cfg = RfConfig {
            noise_enabled: false,
            ..RfConfig::default()
        };
        let mut bb = DoubleConversionReceiver::new(cfg, 1);
        let t0 = Instant::now();
        let _ = bb.process(&x);
        let t_bb = t0.elapsed();
        let mut cs = CosimReceiver::new(fs, 16, 4).unwrap();
        let t1 = Instant::now();
        let _ = cs.process(&x);
        let t_cs = t1.elapsed();
        let ratio = t_cs.as_secs_f64() / t_bb.as_secs_f64().max(1e-9);
        assert!(ratio > 3.0, "co-sim only {ratio:.1}× slower");
    }
}
