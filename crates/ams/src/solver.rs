//! Fixed-step continuous-time integration of state-space sections.
//!
//! Analog filters are represented as cascades of first/second-order
//! state-space systems in controllable canonical form and integrated
//! with classic RK4 under a zero-order-hold input — the "analog solver"
//! whose fine timestep makes co-simulation expensive (paper §5.3).

use wlan_dsp::design::{AnalogFilter, AnalogSection};
use wlan_dsp::Complex;

/// Integration method for the fixed-step solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Classic 4th-order Runge–Kutta: accurate, conditionally stable
    /// (needs `|pole|·dt ≲ 2.8`).
    #[default]
    Rk4,
    /// Trapezoidal (Tustin): 2nd-order, A-stable — never diverges on a
    /// stable linear system, whatever the step (the workhorse of SPICE
    /// transient analysis).
    Trapezoidal,
}

/// A single state-space section (order ≤ 2) over complex signals.
///
/// Controllable canonical form of `H(s) = N(s)/D(s)` with `D` normalized
/// monic.
#[derive(Debug, Clone)]
pub struct StateSpaceSection {
    order: usize,
    /// Denominator coefficients: x'' = −α0·x − α1·x' + u.
    alpha: [f64; 2],
    /// Output map: y = c·x + d·u.
    c: [f64; 2],
    d: f64,
    /// State (x, x').
    state: [Complex; 2],
    integrator: Integrator,
    /// Cached trapezoidal update matrices for the last `dt` used:
    /// `(dt, m_inv·p (2×2), m_inv·b·dt (2×1))`.
    trap_cache: Option<(f64, [[f64; 2]; 2], [f64; 2])>,
}

impl StateSpaceSection {
    /// Builds from an [`AnalogSection`].
    ///
    /// # Panics
    ///
    /// Panics on a zeroth-order (pure gain) section with zero
    /// denominator dynamics.
    pub fn from_analog(sec: &AnalogSection) -> Self {
        if sec.a[2] != 0.0 {
            // Second order: normalize by a2.
            let a0 = sec.a[0] / sec.a[2];
            let a1 = sec.a[1] / sec.a[2];
            let b0 = sec.b[0] / sec.a[2];
            let b1 = sec.b[1] / sec.a[2];
            let b2 = sec.b[2] / sec.a[2];
            StateSpaceSection {
                order: 2,
                alpha: [a0, a1],
                c: [b0 - b2 * a0, b1 - b2 * a1],
                d: b2,
                state: [Complex::ZERO; 2],
                integrator: Integrator::Rk4,
                trap_cache: None,
            }
        } else {
            assert!(sec.a[1] != 0.0, "static section has no dynamics");
            // First order: normalize by a1.
            let a0 = sec.a[0] / sec.a[1];
            let b0 = sec.b[0] / sec.a[1];
            let b1 = sec.b[1] / sec.a[1];
            StateSpaceSection {
                order: 1,
                alpha: [a0, 0.0],
                c: [b0 - b1 * a0, 0.0],
                d: b1,
                state: [Complex::ZERO; 2],
                integrator: Integrator::Rk4,
                trap_cache: None,
            }
        }
    }

    /// Section order (1 or 2).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Selects the integration method.
    pub fn set_integrator(&mut self, integrator: Integrator) {
        self.integrator = integrator;
        self.trap_cache = None;
    }

    /// Trapezoidal update: `(I − h·A)x' = (I + h·A)x + dt·B·u`, `h = dt/2`,
    /// solved analytically for the ≤2×2 system and cached per `dt`.
    fn step_trapezoidal(&mut self, u: Complex, dt: f64) -> Complex {
        let cached = match self.trap_cache {
            Some((d, m, b)) if d == dt => (m, b),
            _ => {
                let h = dt / 2.0;
                let (m, b) = if self.order == 2 {
                    let (a0, a1) = (self.alpha[0], self.alpha[1]);
                    // I − hA = [[1, −h],[h·a0, 1 + h·a1]]
                    let det = (1.0 + h * a1) + h * h * a0;
                    let inv = [[(1.0 + h * a1) / det, h / det], [-h * a0 / det, 1.0 / det]];
                    // P = I + hA = [[1, h],[−h·a0, 1 − h·a1]]
                    let p = [[1.0, h], [-h * a0, 1.0 - h * a1]];
                    // m = inv · p
                    let m = [
                        [
                            inv[0][0] * p[0][0] + inv[0][1] * p[1][0],
                            inv[0][0] * p[0][1] + inv[0][1] * p[1][1],
                        ],
                        [
                            inv[1][0] * p[0][0] + inv[1][1] * p[1][0],
                            inv[1][0] * p[0][1] + inv[1][1] * p[1][1],
                        ],
                    ];
                    // b = inv · B·dt with B = [0, 1]
                    let b = [inv[0][1] * dt, inv[1][1] * dt];
                    (m, b)
                } else {
                    let a = -self.alpha[0];
                    let den = 1.0 - h * a;
                    ([[(1.0 + h * a) / den, 0.0], [0.0, 0.0]], [dt / den, 0.0])
                };
                self.trap_cache = Some((dt, m, b));
                (m, b)
            }
        };
        let (m, b) = cached;
        let x = self.state;
        self.state = [
            x[0] * m[0][0] + x[1] * m[0][1] + u * b[0],
            x[0] * m[1][0] + x[1] * m[1][1] + u * b[1],
        ];
        self.output(u)
    }

    #[inline]
    fn derivative(&self, x: [Complex; 2], u: Complex) -> [Complex; 2] {
        if self.order == 2 {
            [x[1], u - x[0] * self.alpha[0] - x[1] * self.alpha[1]]
        } else {
            [u - x[0] * self.alpha[0], Complex::ZERO]
        }
    }

    /// Advances the section by `dt` with input `u` held constant (ZOH),
    /// returning the output at the end of the step.
    pub fn step(&mut self, u: Complex, dt: f64) -> Complex {
        if self.integrator == Integrator::Trapezoidal {
            return self.step_trapezoidal(u, dt);
        }
        // RK4 with constant input.
        let x = self.state;
        let k1 = self.derivative(x, u);
        let x2 = [x[0] + k1[0] * (dt / 2.0), x[1] + k1[1] * (dt / 2.0)];
        let k2 = self.derivative(x2, u);
        let x3 = [x[0] + k2[0] * (dt / 2.0), x[1] + k2[1] * (dt / 2.0)];
        let k3 = self.derivative(x3, u);
        let x4 = [x[0] + k3[0] * dt, x[1] + k3[1] * dt];
        let k4 = self.derivative(x4, u);
        for i in 0..2 {
            self.state[i] = x[i] + (k1[i] + k2[i] * 2.0 + k3[i] * 2.0 + k4[i]) * (dt / 6.0);
        }
        self.output(u)
    }

    /// Output for the current state and input.
    pub fn output(&self, u: Complex) -> Complex {
        self.state[0] * self.c[0] + self.state[1] * self.c[1] + u * self.d
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        self.state = [Complex::ZERO; 2];
    }
}

/// A full continuous-time filter: gain plus cascaded sections.
#[derive(Debug, Clone)]
pub struct StateSpaceFilter {
    gain: f64,
    sections: Vec<StateSpaceSection>,
}

impl StateSpaceFilter {
    /// Builds from a designed [`AnalogFilter`].
    pub fn from_analog(filter: &AnalogFilter) -> Self {
        StateSpaceFilter {
            gain: filter.gain(),
            sections: filter
                .sections()
                .iter()
                .map(StateSpaceSection::from_analog)
                .collect(),
        }
    }

    /// Selects the integration method for every section.
    pub fn set_integrator(&mut self, integrator: Integrator) {
        for s in self.sections.iter_mut() {
            s.set_integrator(integrator);
        }
    }

    /// Total state count.
    pub fn state_count(&self) -> usize {
        self.sections.iter().map(|s| s.order()).sum()
    }

    /// Advances the cascade by `dt` with ZOH input.
    pub fn step(&mut self, u: Complex, dt: f64) -> Complex {
        let mut v = u * self.gain;
        for s in self.sections.iter_mut() {
            v = s.step(v, dt);
        }
        v
    }

    /// Clears all states.
    pub fn reset(&mut self) {
        for s in self.sections.iter_mut() {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_dsp::design::FilterKind;

    fn tone_gain(filter: &mut StateSpaceFilter, f_hz: f64, dt: f64, n: usize) -> f64 {
        let mut p_out = 0.0;
        let mut count = 0usize;
        for i in 0..n {
            let t = i as f64 * dt;
            let u = Complex::cis(2.0 * std::f64::consts::PI * f_hz * t);
            let y = filter.step(u, dt);
            if i > n / 2 {
                p_out += y.norm_sqr();
                count += 1;
            }
        }
        (p_out / count as f64).sqrt()
    }

    #[test]
    fn first_order_lowpass_dc_gain() {
        let af = AnalogFilter::butterworth(1, FilterKind::Lowpass, 1e6);
        let mut ss = StateSpaceFilter::from_analog(&af);
        assert_eq!(ss.state_count(), 1);
        let dt = 1.0 / 320e6;
        let mut y = Complex::ZERO;
        for _ in 0..200_000 {
            y = ss.step(Complex::ONE, dt);
        }
        assert!((y.re - 1.0).abs() < 1e-6, "dc gain {}", y.re);
    }

    #[test]
    fn matches_analog_response_across_band() {
        let af = AnalogFilter::chebyshev1(5, 0.5, FilterKind::Lowpass, 8e6);
        let dt = 1.0 / 640e6;
        for f in [1e6, 4e6, 8e6, 16e6, 24e6] {
            let mut ss = StateSpaceFilter::from_analog(&af);
            let got = tone_gain(&mut ss, f, dt, 400_000);
            let expect = af.response(f).abs();
            assert!(
                (got - expect).abs() < 0.02 * expect.max(0.01),
                "f = {f}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn highpass_blocks_dc() {
        let af = AnalogFilter::butterworth(2, FilterKind::Highpass, 150e3);
        let mut ss = StateSpaceFilter::from_analog(&af);
        let dt = 1.0 / 320e6;
        let mut y = Complex::ONE;
        for _ in 0..3_000_000 {
            y = ss.step(Complex::ONE, dt);
        }
        assert!(y.abs() < 1e-2, "residual dc {}", y.abs());
    }

    #[test]
    fn complex_signals_filtered_per_axis() {
        // A purely imaginary input yields a purely imaginary output
        // (real coefficients).
        let af = AnalogFilter::butterworth(3, FilterKind::Lowpass, 5e6);
        let mut ss = StateSpaceFilter::from_analog(&af);
        let dt = 1.0 / 320e6;
        for _ in 0..10_000 {
            let y = ss.step(Complex::new(0.0, 1.0), dt);
            assert!(y.re.abs() < 1e-12);
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let af = AnalogFilter::butterworth(2, FilterKind::Lowpass, 1e6);
        let mut ss = StateSpaceFilter::from_analog(&af);
        let dt = 1e-9;
        let a = ss.step(Complex::ONE, dt);
        ss.reset();
        let b = ss.step(Complex::ONE, dt);
        assert_eq!(a, b);
    }

    #[test]
    fn trapezoidal_matches_analog_response() {
        let af = AnalogFilter::chebyshev1(5, 0.5, FilterKind::Lowpass, 8e6);
        let dt = 1.0 / 640e6;
        for f in [1e6, 4e6, 8e6, 16e6] {
            let mut ss = StateSpaceFilter::from_analog(&af);
            ss.set_integrator(Integrator::Trapezoidal);
            let got = tone_gain(&mut ss, f, dt, 400_000);
            let expect = af.response(f).abs();
            assert!(
                (got - expect).abs() < 0.03 * expect.max(0.01),
                "f = {f}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn trapezoidal_is_a_stable_where_rk4_diverges() {
        // A 10 MHz pole stepped at dt = 1/16 MHz: |pole·dt| ≈ 3.9, past
        // RK4's stability boundary (~2.8) but fine for trapezoidal.
        let af = AnalogFilter::butterworth(1, FilterKind::Lowpass, 10e6);
        let dt = 1.0 / 16e6;
        let run = |integ: Integrator| -> f64 {
            let mut ss = StateSpaceFilter::from_analog(&af);
            ss.set_integrator(integ);
            let mut peak = 0.0f64;
            for _ in 0..2000 {
                peak = peak.max(ss.step(Complex::ONE, dt).abs());
                if !peak.is_finite() || peak > 1e12 {
                    break;
                }
            }
            peak
        };
        let rk4 = run(Integrator::Rk4);
        let trap = run(Integrator::Trapezoidal);
        assert!(rk4 > 1e6, "RK4 unexpectedly stable: peak {rk4}");
        assert!(trap < 2.0, "trapezoidal diverged: peak {trap}");
    }

    #[test]
    fn trapezoidal_dc_gain_exact() {
        let af = AnalogFilter::butterworth(2, FilterKind::Lowpass, 1e6);
        let mut ss = StateSpaceFilter::from_analog(&af);
        ss.set_integrator(Integrator::Trapezoidal);
        let dt = 1.0 / 100e6;
        let mut y = Complex::ZERO;
        for _ in 0..100_000 {
            y = ss.step(Complex::ONE, dt);
        }
        assert!((y.re - 1.0).abs() < 1e-6, "dc {}", y.re);
    }

    #[test]
    fn rk4_stable_at_practical_step() {
        // 10 MHz edge integrated at 320 MHz must not blow up.
        let af = AnalogFilter::chebyshev1(5, 0.5, FilterKind::Lowpass, 10e6);
        let mut ss = StateSpaceFilter::from_analog(&af);
        let dt = 1.0 / 320e6;
        let mut peak = 0.0f64;
        for i in 0..100_000 {
            let u = Complex::cis(0.3 * i as f64);
            peak = peak.max(ss.step(u, dt).abs());
        }
        assert!(peak < 10.0, "unstable: peak {peak}");
    }
}
