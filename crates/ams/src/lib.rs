//! Mixed-signal co-simulation substrate — the AMS-Designer role in the
//! paper's flow.
//!
//! The RF subsystem is described as a small behavioral netlist (a
//! Verilog-AMS-flavored instance list), elaborated into a cascade of
//! continuous-time behavioral device models, and integrated with a
//! fixed-step RK4 solver at a rate well above the system sample rate.
//! The [`cosim`] bridge exchanges sample frames with the (discrete-time)
//! dataflow world, exactly like the SPW ↔ AMS co-simulation of §4.3 —
//! including its two headline observations:
//!
//! 1. **Runtime**: the analog engine integrates each 80 Msps sample with
//!    `osr` RK4 sub-steps across every filter state, so co-simulation is
//!    structurally much slower than the pure system-level run (paper
//!    Table 2: 30–40×).
//! 2. **Noise gap**: like the paper's AMS Designer ("does not support
//!    some functions for generating noise (`white_noise`,
//!    `flicker_noise`)"), the analog devices default to *noiseless*
//!    transient behavior, so BER measured through the co-simulation is
//!    optimistic relative to the system-level simulation (§5.1).
//!
//! * [`netlist`] — parser for the behavioral netlist format
//! * [`solver`] — continuous-time state-space integration (RK4)
//! * [`devices`] — behavioral device library (amp, mixer, filters, …)
//! * [`elaborate`] — netlist → device cascade
//! * [`cosim`] — the DSP-rate ↔ analog-rate bridge and the co-simulated
//!   double-conversion receiver

pub mod cosim;
pub mod devices;
pub mod elaborate;
pub mod netlist;
pub mod solver;

pub use cosim::CosimReceiver;
pub use netlist::{Netlist, NetlistError};
