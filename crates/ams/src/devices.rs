//! Behavioral analog device library: the models the netlist can
//! instantiate. Each device advances by one analog timestep `dt`.
//!
//! Matching the paper's observation that the AMS simulator could not run
//! the `white_noise`/`flicker_noise` functions in transient analysis,
//! these devices are *noiseless* by default; [`AnalogDevice`] is the
//! common trait.

use crate::solver::StateSpaceFilter;
use wlan_dsp::design::{AnalogFilter, FilterKind};
use wlan_dsp::Complex;
use wlan_rf::nonlinearity::Nonlinearity;
use wlan_units::{Db, Dbm, Hz};

/// A continuous-time behavioral device.
///
/// `Send` is a supertrait so elaborated device chains (and the
/// receivers holding them) can migrate between the session engine's
/// worker threads; every in-tree device is plain state.
pub trait AnalogDevice: Send {
    /// Device instance name.
    fn name(&self) -> &str;

    /// Advances by `dt` seconds with input `u` (ZOH), returning the
    /// output.
    fn step(&mut self, u: Complex, dt: f64) -> Complex;

    /// Advances over a block of samples in place: `buf[i]` is replaced by
    /// the output of the `i`-th step. One virtual dispatch per block
    /// instead of per sample; implementations may hoist per-step
    /// constants, but must produce outputs bit-identical to calling
    /// [`AnalogDevice::step`] on each sample in order (the block-vs-
    /// sample differential tests pin this).
    fn step_block(&mut self, buf: &mut [Complex], dt: f64) {
        for v in buf.iter_mut() {
            *v = self.step(*v, dt);
        }
    }

    /// Resets internal state.
    fn reset(&mut self);
}

/// Amplifier: gain plus optional compression (memoryless).
#[derive(Debug, Clone)]
pub struct AnalogAmplifier {
    name: String,
    a1: f64,
    nonlinearity: Nonlinearity,
}

impl AnalogAmplifier {
    /// Creates an amplifier with gain `gain_db` and a nonlinearity.
    pub fn new(name: impl Into<String>, gain_db: Db, nonlinearity: Nonlinearity) -> Self {
        AnalogAmplifier {
            name: name.into(),
            a1: gain_db.to_amplitude_ratio(),
            nonlinearity,
        }
    }
}

impl AnalogDevice for AnalogAmplifier {
    fn name(&self) -> &str {
        &self.name
    }
    fn step(&mut self, u: Complex, _dt: f64) -> Complex {
        self.nonlinearity.apply(u, self.a1)
    }
    fn step_block(&mut self, buf: &mut [Complex], _dt: f64) {
        // Memoryless: hoist the nonlinearity constants once per block
        // (`prepare` is bit-identical to per-sample `apply`).
        let nl = self.nonlinearity.prepare(self.a1);
        for v in buf.iter_mut() {
            *v = nl.apply(*v);
        }
    }
    fn reset(&mut self) {}
}

/// Mixer: conversion gain and DC offset (memoryless, noiseless).
#[derive(Debug, Clone)]
pub struct AnalogMixer {
    name: String,
    a1: f64,
    dc: Complex,
}

impl AnalogMixer {
    /// Creates a mixer with gain `gain_db` and optional output DC
    /// offset.
    pub fn new(name: impl Into<String>, gain_db: Db, dc_offset_dbm: Option<Dbm>) -> Self {
        AnalogMixer {
            name: name.into(),
            a1: gain_db.to_amplitude_ratio(),
            dc: dc_offset_dbm
                .map(|dbm| Complex::from_re(dbm.to_amplitude().0))
                .unwrap_or(Complex::ZERO),
        }
    }
}

impl AnalogDevice for AnalogMixer {
    fn name(&self) -> &str {
        &self.name
    }
    fn step(&mut self, u: Complex, _dt: f64) -> Complex {
        u * self.a1 + self.dc
    }
    fn step_block(&mut self, buf: &mut [Complex], _dt: f64) {
        // Memoryless and branch-free: a pure autovectorizable pass.
        let (a1, dc) = (self.a1, self.dc);
        for v in buf.iter_mut() {
            *v = *v * a1 + dc;
        }
    }
    fn reset(&mut self) {}
}

/// Continuous-time filter device (Chebyshev/Butterworth LP or HP).
#[derive(Debug, Clone)]
pub struct AnalogFilterDevice {
    name: String,
    filter: StateSpaceFilter,
}

impl AnalogFilterDevice {
    /// Chebyshev type-I lowpass.
    pub fn chebyshev_lowpass(
        name: impl Into<String>,
        order: usize,
        ripple_db: Db,
        edge_hz: Hz,
    ) -> Self {
        let af = AnalogFilter::chebyshev1(order, ripple_db.0, FilterKind::Lowpass, edge_hz.0);
        AnalogFilterDevice {
            name: name.into(),
            filter: StateSpaceFilter::from_analog(&af),
        }
    }

    /// Butterworth highpass (the inter-stage DC block).
    pub fn butterworth_highpass(name: impl Into<String>, order: usize, cutoff_hz: Hz) -> Self {
        let af = AnalogFilter::butterworth(order, FilterKind::Highpass, cutoff_hz.0);
        AnalogFilterDevice {
            name: name.into(),
            filter: StateSpaceFilter::from_analog(&af),
        }
    }

    /// Number of continuous states.
    pub fn state_count(&self) -> usize {
        self.filter.state_count()
    }
}

impl AnalogDevice for AnalogFilterDevice {
    fn name(&self) -> &str {
        &self.name
    }
    fn step(&mut self, u: Complex, dt: f64) -> Complex {
        self.filter.step(u, dt)
    }
    fn reset(&mut self) {
        self.filter.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplifier_gain() {
        let mut a = AnalogAmplifier::new("a", Db(20.0), Nonlinearity::Linear);
        let y = a.step(Complex::ONE, 1e-9);
        assert!((y.re - 10.0).abs() < 1e-12);
        assert_eq!(a.name(), "a");
    }

    #[test]
    fn amplifier_compresses() {
        let mut a = AnalogAmplifier::new("a", Db(0.0), Nonlinearity::rapp(Dbm(-10.0)));
        let small = a.step(Complex::from_re(1e-4), 1e-9).abs() / 1e-4;
        let large = a.step(Complex::from_re(1.0), 1e-9).abs() / 1.0;
        assert!(large < small * 0.5);
    }

    #[test]
    fn mixer_dc_offset() {
        let mut m = AnalogMixer::new("m", Db(6.0), Some(Dbm(-30.0)));
        let y = m.step(Complex::ZERO, 1e-9);
        let expect = Dbm(-30.0).to_amplitude().0;
        assert!((y.re - expect).abs() < 1e-12);
    }

    #[test]
    fn filter_device_smooths() {
        let mut f = AnalogFilterDevice::chebyshev_lowpass("lpf", 5, Db(0.5), Hz(10e6));
        assert_eq!(f.state_count(), 5);
        let dt = 1.0 / 320e6;
        let mut y = Complex::ZERO;
        for _ in 0..100_000 {
            y = f.step(Complex::ONE, dt);
        }
        assert!((y.re - 1.0).abs() < 0.01, "dc {}", y.re);
        f.reset();
        assert_eq!(f.step(Complex::ZERO, dt), Complex::ZERO);
    }

    #[test]
    fn highpass_device_blocks_dc() {
        let mut f = AnalogFilterDevice::butterworth_highpass("hpf", 2, Hz(150e3));
        let dt = 1.0 / 320e6;
        let mut y = Complex::ONE;
        for _ in 0..2_000_000 {
            y = f.step(Complex::ONE, dt);
        }
        assert!(y.abs() < 0.02, "dc residue {}", y.abs());
    }
}

/// Continuous-time AGC: an RC power detector driving a log-domain gain
/// loop — the "amplified by an automatic gain controlled amplifier"
/// stage of the paper's Fig. 2, in analog form.
#[derive(Debug, Clone)]
pub struct AnalogAgc {
    name: String,
    target_power: f64,
    /// Detector time constant (s).
    tau_det: f64,
    /// Loop gain (1/s).
    loop_gain: f64,
    power_est: f64,
    log_gain: f64,
}

impl AnalogAgc {
    /// Creates an AGC leveling to `target_power` (`mean(|x|²)`), with
    /// detector time constant `tau_det_s` and loop gain `loop_gain_hz`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters.
    pub fn new(
        name: impl Into<String>,
        target_power: f64,
        tau_det_s: f64,
        loop_gain_hz: f64,
    ) -> Self {
        assert!(
            target_power > 0.0 && tau_det_s > 0.0 && loop_gain_hz > 0.0,
            "AGC parameters must be positive"
        );
        AnalogAgc {
            name: name.into(),
            target_power,
            tau_det: tau_det_s,
            loop_gain: loop_gain_hz,
            power_est: target_power,
            log_gain: 0.0,
        }
    }
}

impl AnalogDevice for AnalogAgc {
    fn name(&self) -> &str {
        &self.name
    }
    fn step(&mut self, u: Complex, dt: f64) -> Complex {
        let y = u * self.log_gain.exp();
        // RC detector on the *output* power; log-domain integrator.
        let p = y.norm_sqr();
        self.power_est += (p - self.power_est) * (dt / self.tau_det).min(1.0);
        let err = (self.target_power / self.power_est.max(1e-300)).ln();
        self.log_gain += self.loop_gain * err * dt;
        // Clamp to a physical gain range (±60 dB).
        self.log_gain = self.log_gain.clamp(-6.9, 6.9);
        y
    }
    fn reset(&mut self) {
        self.power_est = self.target_power;
        self.log_gain = 0.0;
    }
}

#[cfg(test)]
mod agc_tests {
    use super::*;

    #[test]
    fn analog_agc_converges_to_target() {
        let mut agc = AnalogAgc::new("agc", 1.0, 2e-6, 2e5);
        let dt = 1.0 / 320e6;
        let amp = 1e-2; // input power 1e-4, needs +40 dB of gain
        let mut p_tail = 0.0;
        let mut count = 0;
        let n = 3_000_000;
        for i in 0..n {
            let u = Complex::from_polar(amp, 0.3 * i as f64);
            let y = agc.step(u, dt);
            if i > n * 3 / 4 {
                p_tail += y.norm_sqr();
                count += 1;
            }
        }
        let p = p_tail / count as f64;
        assert!((p - 1.0).abs() < 0.2, "settled power {p}");
    }

    #[test]
    fn analog_agc_tracks_level_step() {
        let mut agc = AnalogAgc::new("agc", 1.0, 2e-6, 2e5);
        let dt = 1.0 / 320e6;
        for i in 0..2_000_000 {
            agc.step(Complex::from_polar(0.1, 0.3 * i as f64), dt);
        }
        // 20 dB drop; loop must re-converge.
        let mut p_tail = 0.0;
        let mut count = 0;
        let n = 3_000_000;
        for i in 0..n {
            let y = agc.step(Complex::from_polar(0.01, 0.3 * i as f64), dt);
            if i > n * 3 / 4 {
                p_tail += y.norm_sqr();
                count += 1;
            }
        }
        let p = p_tail / count as f64;
        assert!((p - 1.0).abs() < 0.25, "after step: {p}");
    }

    #[test]
    #[should_panic]
    fn analog_agc_bad_params_panic() {
        let _ = AnalogAgc::new("agc", 0.0, 1e-6, 1e5);
    }
}
