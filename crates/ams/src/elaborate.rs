//! Elaboration: netlist → device cascade.

use crate::devices::{AnalogAgc, AnalogAmplifier, AnalogDevice, AnalogFilterDevice, AnalogMixer};
use crate::netlist::{Netlist, NetlistError};
use wlan_rf::nonlinearity::Nonlinearity;
use wlan_units::{Db, Dbm, Hz};

/// The default double-conversion receiver netlist (paper Fig. 2),
/// parameterizable in tests/experiments by generating variants of this
/// text.
pub const DEFAULT_RECEIVER_NETLIST: &str = "\
# Double-conversion 802.11a receiver front end (complex envelope)
lna1  lna     rf  n1  gain=15 p1db=-5
mix1  mixer   n1  n2  gain=8
hpf1  hpf     n2  n3  fc=150k order=2
mix2  mixer   n3  n4  gain=6 dc=-45
lpf1  cheb_lp n4  out order=5 ripple=0.5 edge=10M
";

/// Builds the device cascade for a netlist chain from node `input` to
/// node `output`.
///
/// Supported models:
///
/// | model | parameters |
/// |---|---|
/// | `lna` / `amp` | `gain` (dB), optional `p1db` (dBm) or `iip3` (dBm) |
/// | `mixer` | `gain` (dB), optional `dc` (dBm) |
/// | `hpf` | `fc` (Hz), optional `order` (default 2) |
/// | `cheb_lp` | `edge` (Hz), optional `order` (default 5), `ripple` (dB, default 0.5) |
/// | `agc` | optional `target` (power, default 1), `tau` (s, default 2 µs), `loop` (1/s, default 2e5) |
///
/// # Errors
///
/// Returns a [`NetlistError`] for unknown models, missing parameters or
/// a broken chain.
pub fn elaborate(
    netlist: &Netlist,
    input: &str,
    output: &str,
) -> Result<Vec<Box<dyn AnalogDevice>>, NetlistError> {
    let chain = netlist.chain(input, output)?;
    let mut devices: Vec<Box<dyn AnalogDevice>> = Vec::with_capacity(chain.len());
    for inst in chain {
        let dev: Box<dyn AnalogDevice> = match inst.model.as_str() {
            "lna" | "amp" => {
                // Netlist text is the plain-number wire format; wrap the
                // parameters into dimension-safe types right here.
                let gain = Db(inst.param("gain")?);
                let nl = if let Some(&p1) = inst.params.get("p1db") {
                    Nonlinearity::rapp(Dbm(p1))
                } else if let Some(&ip3) = inst.params.get("iip3") {
                    Nonlinearity::Cubic { iip3_dbm: Dbm(ip3) }
                } else {
                    Nonlinearity::Linear
                };
                Box::new(AnalogAmplifier::new(inst.name.clone(), gain, nl))
            }
            "mixer" => {
                let gain = Db(inst.param("gain")?);
                let dc = inst.params.get("dc").copied().map(Dbm);
                Box::new(AnalogMixer::new(inst.name.clone(), gain, dc))
            }
            "hpf" => {
                let fc = Hz(inst.param("fc")?);
                let order = inst.param_or("order", 2.0) as usize;
                Box::new(AnalogFilterDevice::butterworth_highpass(
                    inst.name.clone(),
                    order,
                    fc,
                ))
            }
            "cheb_lp" => {
                let edge = Hz(inst.param("edge")?);
                let order = inst.param_or("order", 5.0) as usize;
                let ripple = Db(inst.param_or("ripple", 0.5));
                Box::new(AnalogFilterDevice::chebyshev_lowpass(
                    inst.name.clone(),
                    order,
                    ripple,
                    edge,
                ))
            }
            "agc" => {
                let target = inst.param_or("target", 1.0);
                let tau = inst.param_or("tau", 2e-6);
                let loop_gain = inst.param_or("loop", 2e5);
                Box::new(AnalogAgc::new(inst.name.clone(), target, tau, loop_gain))
            }
            other => {
                return Err(NetlistError::UnknownModel {
                    model: other.to_string(),
                    line: inst.line,
                })
            }
        };
        devices.push(dev);
    }
    Ok(devices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlan_dsp::Complex;

    #[test]
    fn default_netlist_elaborates() {
        let n = Netlist::parse(DEFAULT_RECEIVER_NETLIST).unwrap();
        let devices = elaborate(&n, "rf", "out").expect("elaborates");
        assert_eq!(devices.len(), 5);
        assert_eq!(devices[0].name(), "lna1");
        assert_eq!(devices[4].name(), "lpf1");
    }

    #[test]
    fn cascade_processes_signal() {
        let n = Netlist::parse(DEFAULT_RECEIVER_NETLIST).unwrap();
        let mut devices = elaborate(&n, "rf", "out").unwrap();
        let dt = 1.0 / 320e6;
        // Drive with a small 1 MHz tone; the output should be an
        // amplified tone (total linear gain 29 dB ≈ ×28.2 amplitude).
        let amp_in = 1e-4;
        let mut p_out = 0.0;
        let n_steps = 200_000;
        let mut counted = 0;
        for i in 0..n_steps {
            let t = i as f64 * dt;
            let mut v = Complex::from_polar(amp_in, 2.0 * std::f64::consts::PI * 1e6 * t);
            for d in devices.iter_mut() {
                v = d.step(v, dt);
            }
            if i > n_steps / 2 {
                p_out += v.norm_sqr();
                counted += 1;
            }
        }
        let gain = ((p_out / counted as f64).sqrt() / amp_in).log10() * 20.0;
        assert!((gain - 29.0).abs() < 1.0, "cascade gain {gain} dB");
    }

    #[test]
    fn unknown_model_rejected() {
        let n = Netlist::parse("x warp rf out flux=1\n").unwrap();
        assert!(matches!(
            elaborate(&n, "rf", "out"),
            Err(NetlistError::UnknownModel { .. })
        ));
    }

    #[test]
    fn missing_param_rejected() {
        let n = Netlist::parse("a amp rf out nf=3\n").unwrap();
        assert!(matches!(
            elaborate(&n, "rf", "out"),
            Err(NetlistError::MissingParam { .. })
        ));
    }

    #[test]
    fn amp_nonlinearity_selection() {
        let n = Netlist::parse("a amp rf out gain=0 iip3=-10\n").unwrap();
        let mut d = elaborate(&n, "rf", "out").unwrap();
        // Drive at IIP3-level power: cubic model compresses visibly.
        let a = (2.0 * wlan_dsp::math::dbm_to_watts(-12.0)).sqrt();
        let y = d[0].step(Complex::from_re(a), 1e-9);
        assert!(y.re < a * 0.95);
    }
}
