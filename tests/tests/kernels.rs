//! Bit-identity gates for the allocation-free hot-path kernels.
//!
//! The `_into` refactor (reusable Viterbi trellis, specialized 64-point
//! FFT, scratch-arena RF chain and link loop) is only legal because it
//! is *bit-identical* to the code it replaced. The `LinkReport`
//! literals below were measured on the pre-refactor tree; every field
//! is compared with exact `==` — including the `f64` EVM — so any
//! reordered floating-point operation, skipped RNG draw, or altered
//! buffer lifetime in the hot path fails loudly here.

use wlan_dsp::Rng;
use wlan_phy::viterbi::{decode_soft, Llr, ViterbiDecoder};
use wlan_phy::Rate;
use wlan_rf::receiver::RfConfig;
use wlan_sim::link::{AdjacentChannel, FrontEnd, LinkConfig, LinkSimulation};

/// Ideal-front-end link at 11.5 dB SNR: enough errors (568 of 11520
/// bits) that the whole soft-decision path — demap, deinterleave,
/// depuncture, Viterbi, descramble — is exercised on non-trivial LLRs.
#[test]
fn link_report_pins_ideal_seed_behavior() {
    let report = LinkSimulation::new(LinkConfig {
        rate: Rate::R36,
        psdu_len: 120,
        packets: 12,
        seed: 77,
        snr_db: Some(11.5),
        front_end: FrontEnd::Ideal,
        ..LinkConfig::default()
    })
    .run();

    assert_eq!(report.meter.errors(), 568);
    assert_eq!(report.meter.bits(), 11520);
    assert_eq!(report.meter.packets(), 12);
    assert_eq!(report.meter.packet_errors(), 10);
    assert_eq!(report.decoded_packets, 12);
    // Exact f64 equality on purpose: the kernels must be bit-identical,
    // not merely close.
    assert_eq!(report.evm_db, Some(-11.193553718128795));
}

/// RF-baseband link near sensitivity with an adjacent-channel
/// interferer: pins the fused front-end chain (LNA → mixers → filters →
/// AGC → ADC → decimation) plus the scene builder's RNG draw order.
#[test]
fn link_report_pins_rf_baseband_seed_behavior() {
    let report = LinkSimulation::new(LinkConfig {
        rate: Rate::R48,
        psdu_len: 80,
        packets: 4,
        seed: 33,
        rx_level_dbm: -86.0,
        adjacent: Some(AdjacentChannel::first()),
        front_end: FrontEnd::RfBaseband(RfConfig::default()),
        ..LinkConfig::default()
    })
    .run();

    assert_eq!(report.meter.errors(), 1322);
    assert_eq!(report.meter.bits(), 2560);
    assert_eq!(report.meter.packets(), 4);
    assert_eq!(report.meter.packet_errors(), 4);
    assert_eq!(report.decoded_packets, 4);
    assert_eq!(report.evm_db, Some(-7.230632560856826));
}

/// Noisy LLRs for a random terminated codeword.
fn noisy_llrs(message_bits: usize, noise: f64, rng: &mut Rng) -> Vec<Llr> {
    let mut bits: Vec<u8> = (0..message_bits)
        .map(|_| (rng.next_u64() & 1) as u8)
        .collect();
    bits.extend_from_slice(&[0; 6]);
    wlan_phy::convolutional::encode(&bits)
        .iter()
        .map(|&b| (1.0 - 2.0 * b as f64) + noise * rng.gaussian())
        .collect()
}

/// Property: a reused `ViterbiDecoder` matches the allocating
/// `decode_soft` on random LLR streams of many lengths and noise
/// levels, with no state leaking between consecutive decodes.
#[test]
fn reused_decoder_matches_decode_soft_on_random_streams() {
    let mut rng = Rng::new(2026);
    let mut dec = ViterbiDecoder::new();
    let mut got = Vec::new();
    for trial in 0..40 {
        let message_bits = 1 + (rng.next_u64() % 600) as usize;
        let noise = [0.0, 0.3, 0.8, 1.5][trial % 4];
        let llrs = noisy_llrs(message_bits, noise, &mut rng);
        dec.decode_soft_into(&llrs, &mut got);
        let want = decode_soft(&llrs);
        assert_eq!(
            got, want,
            "trial {trial}: {message_bits} bits, noise {noise}"
        );
    }
}

/// Property: both soft decoders agree with the conformance reference
/// trellis, so the production kernel is anchored to an independent
/// implementation, not merely to itself.
#[test]
fn soft_decoders_match_conformance_reference() {
    let mut rng = Rng::new(31);
    let mut dec = ViterbiDecoder::new();
    let mut got = Vec::new();
    for trial in 0..10 {
        let llrs = noisy_llrs(120 + 40 * trial, 0.6, &mut rng);
        dec.decode_soft_into(&llrs, &mut got);
        let reference = wlan_conformance::refimpl::viterbi_reference(&llrs);
        assert_eq!(got, reference, "trial {trial}");
    }
}

/// Pure noise (no codeword structure) must still decode identically —
/// the traceback tie-breaking rules are part of the bit contract.
#[test]
fn decoders_agree_on_pure_noise() {
    let mut rng = Rng::new(97);
    let mut dec = ViterbiDecoder::new();
    let mut got = Vec::new();
    for _ in 0..10 {
        let llrs: Vec<Llr> = (0..480).map(|_| 2.0 * rng.gaussian()).collect();
        dec.decode_soft_into(&llrs, &mut got);
        assert_eq!(got, decode_soft(&llrs));
        assert_eq!(got, wlan_conformance::refimpl::viterbi_reference(&llrs));
    }
}
