//! The SPW-style system schematic: the full link assembled as a
//! dataflow block graph (paper Fig. 3) and executed by the scheduler.

use std::cell::RefCell;
use std::rc::Rc;
use wlan_channel::awgn::Awgn;
use wlan_dataflow::blocks::{AddBlock, FnBlock, SourceBlock};
use wlan_dataflow::graph::Graph;
use wlan_dataflow::probe::Probe;
use wlan_dataflow::sim::Simulation;
use wlan_dataflow::sweep::Sweep;
use wlan_dsp::{Complex, Rng};
use wlan_phy::{Rate, Receiver, Transmitter};
use wlan_rf::receiver::{DoubleConversionReceiver, RfConfig};

/// Assembles tx-source → noise → RF front-end → probe as a block graph
/// and decodes the probe capture.
#[test]
fn system_schematic_runs_and_decodes() {
    let mut rng = Rng::new(1);
    let mut psdu = vec![0u8; 120];
    rng.bytes(&mut psdu);
    let burst = Transmitter::new(Rate::R12).transmit(&psdu);

    // Oversample ×4 for the RF part.
    let mut padded = burst.samples.clone();
    padded.extend(std::iter::repeat_n(Complex::ZERO, 160));
    let scene = wlan_channel::interferer::Scene::new(20e6, 4)
        .add(&padded, 0.0, -50.0, 256)
        .render();

    let mut g = Graph::new();
    let scene_len = scene.len();
    let src = g.add(SourceBlock::new("tx80M", scene, 1024));
    let awgn = Rc::new(RefCell::new(Awgn::new(2)));
    let awgn_block = {
        let awgn = Rc::clone(&awgn);
        g.add(FnBlock::new("awgn", move |x: &[Complex]| {
            awgn.borrow_mut()
                .add_noise_power(x, wlan_rf::noise::source_noise_power(80e6))
        }))
    };
    let frontend = Rc::new(RefCell::new(DoubleConversionReceiver::new(
        RfConfig::default(),
        3,
    )));
    let rf_block = {
        let fe = Rc::clone(&frontend);
        g.add(FnBlock::new("rf", move |x: &[Complex]| {
            fe.borrow_mut().process(x)
        }))
    };
    let probe = Probe::new();
    let sink = g.add(probe.block("baseband"));
    g.connect(src, 0, awgn_block, 0).unwrap();
    g.connect(awgn_block, 0, rf_block, 0).unwrap();
    g.connect(rf_block, 0, sink, 0).unwrap();

    let stats = Simulation::new().run(&mut g).expect("schedule runs");
    assert!(stats.ticks > 2);

    let captured = probe.samples();
    assert_eq!(captured.len(), scene_len / 4);
    let got = Receiver::new().receive(&captured).expect("decodes");
    assert_eq!(got.psdu, psdu);
}

/// A two-path graph: wanted + interferer summed by an AddBlock, the way
/// the paper duplicated the transmitter into the adjacent channel.
#[test]
fn two_transmitter_graph_sums_scenes() {
    let mut rng = Rng::new(4);
    let mut p1 = vec![0u8; 60];
    rng.bytes(&mut p1);
    let b1 = Transmitter::new(Rate::R12).transmit(&p1);
    let b2 = Transmitter::new(Rate::R12)
        .with_scrambler_seed(17)
        .transmit(&[0x33; 60]);

    let mut g = Graph::new();
    // Interferer 20 dB below (a co-channel disturbance at this level is
    // harmless to QPSK).
    let weak: Vec<Complex> = b2.samples.iter().map(|&s| s * 0.1).collect();
    let s1 = g.add(SourceBlock::new("tx1", b1.samples.clone(), 512));
    let s2 = g.add(SourceBlock::new("tx2", weak, 512));
    let add = g.add(AddBlock::new("air"));
    let probe = Probe::new();
    let sink = g.add(probe.block("rx_in"));
    g.connect(s1, 0, add, 0).unwrap();
    g.connect(s2, 0, add, 1).unwrap();
    g.connect(add, 0, sink, 0).unwrap();
    Simulation::new().run(&mut g).expect("runs");

    let got = Receiver::new().receive(&probe.samples()).expect("decodes");
    assert_eq!(got.psdu, p1);
}

/// Parameter sweep driving graph rebuilds — the "simulation manager"
/// workflow.
#[test]
fn sweep_rebuilds_graph_per_point() {
    let sweep = Sweep::linspace(0.0, 1.0, 3);
    let rows = sweep.run(|&gain| {
        let mut g = Graph::new();
        let src = g.add(SourceBlock::new("src", vec![Complex::ONE; 64], 32));
        let amp = g.add(FnBlock::new("amp", move |x: &[Complex]| {
            x.iter().map(|&v| v * gain).collect()
        }));
        let probe = Probe::new();
        let sink = g.add(probe.block("out"));
        g.connect(src, 0, amp, 0).unwrap();
        g.connect(amp, 0, sink, 0).unwrap();
        Simulation::new().run(&mut g).unwrap();
        probe.samples().last().copied().unwrap_or(Complex::ZERO).re
    });
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].result, 0.0);
    assert_eq!(rows[2].result, 1.0);
}
