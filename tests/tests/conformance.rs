//! Conformance gates: the Annex G known-answer tests, analytic-vs-
//! Monte-Carlo BER acceptance bands, and the §17.3.9.6.3 transmit EVM
//! limits. These are the `cargo test` twins of the `wlan-conformance`
//! CLI checks.
//!
//! The fast subset here is tier-1; `WLANSIM_SLOW_TESTS=1` additionally
//! runs a denser BER grid with ~10× the bits per point.

use wlan_conformance::mc::uncoded_ber_point;
use wlan_conformance::{annex_g, mc};
use wlan_dsp::Rng;
use wlan_exec::ThreadPool;
use wlan_meas::analytic;
use wlan_meas::evm::EvmMeter;
use wlan_phy::modulation::nearest_point;
use wlan_phy::params::{Modulation, ALL_RATES};
use wlan_phy::{Receiver, Transmitter};

/// 99.9% two-sided quantile: a correct simulator fails a point about
/// once per thousand runs, and seeds are fixed anyway.
const Z: f64 = 3.29;

/// Every stage of the 802.11a Annex G reference message — bit-exact for
/// bit-domain stages, toleranced for IQ stages.
#[test]
fn annex_g_known_answers() {
    let results = annex_g::run_all();
    let report: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "[{}] {}: {}",
                if r.ok { "ok" } else { "FAIL" },
                r.stage,
                r.detail
            )
        })
        .collect();
    assert!(
        annex_g::all_pass(&results),
        "Annex G stage failures:\n{}",
        report.join("\n")
    );
    assert_eq!(results.len(), 12, "stage list changed unexpectedly");
}

/// Simulated AWGN BER sits inside the Wilson band around the exact
/// closed-form curve for all four constellations (fast tier-1 points,
/// chosen where BER ≈ 1e-2 so a few hundred kbits give tight bands).
#[test]
fn analytic_ber_bands_fast() {
    let pool = ThreadPool::from_env();
    let points = [
        (Modulation::Bpsk, 4.0),
        (Modulation::Qpsk, 7.0),
        (Modulation::Qam16, 14.0),
        (Modulation::Qam64, 20.0),
    ];
    for (i, &(m, snr)) in points.iter().enumerate() {
        let p = uncoded_ber_point(&pool, m, snr, 8, 24_000, 0xA11C, i as u64, Z);
        assert!(p.pass, "{}", p.describe());
    }
}

/// Denser, slower BER grid — opt in with `WLANSIM_SLOW_TESTS=1`.
#[test]
fn analytic_ber_bands_extended() {
    if std::env::var("WLANSIM_SLOW_TESTS").as_deref() != Ok("1") {
        return;
    }
    let pool = ThreadPool::from_env();
    let grid = [
        (Modulation::Bpsk, [3.0, 5.0, 7.0]),
        (Modulation::Qpsk, [6.0, 8.0, 10.0]),
        (Modulation::Qam16, [12.0, 14.0, 16.0]),
        (Modulation::Qam64, [18.0, 20.0, 22.0]),
    ];
    let mut index = 100;
    for (m, snrs) in grid {
        for snr in snrs {
            let p = uncoded_ber_point(&pool, m, snr, 16, 120_000, 0xA11C, index, Z);
            assert!(p.pass, "{}", p.describe());
            index += 1;
        }
    }
}

/// The analytic module's own consistency: at any SNR the curves order
/// by constellation density, and the Wilson band tightens with trials.
#[test]
fn analytic_curves_are_ordered() {
    for snr in [0.0, 5.0, 10.0, 15.0, 20.0] {
        let b = analytic::ber_bpsk(snr);
        let q = analytic::ber_qpsk(snr);
        let q16 = analytic::ber_qam16(snr);
        let q64 = analytic::ber_qam64(snr);
        assert!(b <= q + 1e-15 && q <= q16 && q16 <= q64, "snr {snr}");
    }
    let wide = analytic::wilson_interval(10, 1_000, 1.96);
    let tight = analytic::wilson_interval(100, 10_000, 1.96);
    assert!(tight.1 - tight.0 < wide.1 - wide.0);
}

/// §17.3.9.6.3: transmit EVM at every rate must beat the standard's
/// per-rate limit. A clean loopback through the genie-timed receiver
/// measures the transmitter's own constellation error, which for this
/// float implementation sits far below the mask.
#[test]
fn tx_evm_within_standard_limits() {
    let rx = Receiver::new();
    let mut rng = Rng::new(0xE7);
    for rate in ALL_RATES {
        let mut psdu = vec![0u8; 120];
        rng.bytes(&mut psdu);
        let burst = Transmitter::new(rate).transmit(&psdu);
        let got = rx
            .receive_with_timing(&burst.samples, 192, 0.0)
            .unwrap_or_else(|e| panic!("{rate}: clean loopback failed: {e}"));
        assert_eq!(got.psdu, psdu, "{rate}");
        // Independent EVM measurement through wlan_meas over the
        // equalized constellation.
        let mut meter = EvmMeter::new();
        let m = rate.modulation();
        for &y in &got.equalized {
            meter.update(y, nearest_point(y, m));
        }
        let evm_db = meter.rms_db();
        let limit = rate.evm_limit_db();
        assert!(
            evm_db <= limit,
            "{rate}: TX EVM {evm_db:.1} dB exceeds limit {limit:.1} dB"
        );
        // And the receiver's built-in figure agrees with the meter.
        assert!((evm_db - got.evm_db()).abs() < 0.5, "{rate}");
    }
}

/// Negative control: the EVM checker actually rejects a transmitter
/// degraded past the mask (noise at EVM ≈ −14 dB fails every rate
/// beyond QPSK and must fail R54's −25 dB limit).
#[test]
fn evm_check_rejects_degraded_tx() {
    let rx = Receiver::new();
    let mut rng = Rng::new(0xE8);
    let rate = wlan_phy::Rate::R54;
    let mut psdu = vec![0u8; 120];
    rng.bytes(&mut psdu);
    let burst = Transmitter::new(rate).transmit(&psdu);
    let nv = wlan_dsp::math::db_to_lin(-14.0);
    let noisy: Vec<_> = burst
        .samples
        .iter()
        .map(|&s| s + rng.complex_gaussian(nv))
        .collect();
    if let Ok(got) = rx.receive_with_timing(&noisy, 192, 0.0) {
        assert!(
            got.evm_db() > rate.evm_limit_db(),
            "degraded burst unexpectedly passed: {:.1} dB",
            got.evm_db()
        );
    }
    // (A decode failure is an equally valid rejection.)
}

/// Sharded Monte-Carlo acceptance points are thread-count invariant, so
/// CI parallelism can never change a verdict.
#[test]
fn ber_points_thread_invariant() {
    let serial = ThreadPool::serial();
    let threads = ThreadPool::new(4);
    let a = mc::uncoded_ber_point(&serial, Modulation::Qpsk, 7.0, 6, 12_000, 0x5EED, 0, Z);
    let b = mc::uncoded_ber_point(&threads, Modulation::Qpsk, 7.0, 6, 12_000, 0x5EED, 0, Z);
    assert_eq!(a.errors, b.errors);
    assert_eq!(a.bits, b.bits);
}
