//! Acceptance tests for the static verification layer: every built-in
//! simulation input lints clean, every known-bad fixture is rejected
//! with diagnostics naming the offending nodes, and the SDF buffer
//! bounds are tight against an actual run.

use wlan_dataflow::blocks::{DecimateBlock, FnBlock, NullSink, SourceBlock};
use wlan_dataflow::graph::Graph;
use wlan_dataflow::probe::Probe;
use wlan_dataflow::sdf;
use wlan_dataflow::sim::Simulation;
use wlan_dsp::Complex;
use wlan_lint::units::{self, Allowlist};
use wlan_lint::{ams, dataflow, Report, Severity};

#[test]
fn all_builtin_targets_lint_clean() {
    let mut report = Report::new();
    for (name, graph) in wlan_sim::lintable::graphs() {
        report.add_target(name, dataflow::lint_graph(name, &graph));
    }
    for t in wlan_sim::lintable::netlists() {
        report.add_target(
            t.name,
            ams::lint_netlist(t.name, &t.text, t.input, t.output),
        );
    }
    assert!(report.targets.len() >= 2);
    assert!(
        report.diagnostics.is_empty(),
        "built-in targets must lint clean:\n{}",
        report.render()
    );
}

/// The units pass over the whole workspace: zero raw-dB-math sites
/// outside `wlan-units` and the committed allowlist, and the known-bad
/// fixture keeps tripping every rule. This is the same gate CI runs
/// via `wlan-lint units`.
#[test]
fn units_pass_clean_on_workspace_and_rejects_fixture() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/..");
    let allow_text =
        std::fs::read_to_string(format!("{root}/crates/lint/units_allowlist.txt")).unwrap();
    let (allow, bad) = Allowlist::parse(&allow_text);
    assert!(bad.is_empty(), "malformed allowlist entries: {bad:?}");

    let targets: Vec<String> = ["crates", "tests", "examples"]
        .iter()
        .map(|p| format!("{root}/{p}"))
        .collect();
    let (report, io_errors) = units::lint_paths(&targets, &allow);
    assert!(io_errors.is_empty(), "{io_errors:?}");
    assert!(
        report.diagnostics.is_empty(),
        "raw dB math outside wlan-units + allowlist:\n{}",
        report.render()
    );

    // The fixture is only reachable by explicit listing (walks skip
    // `fixtures/`) and must trip all three rules.
    let fixture = format!("{root}/crates/lint/fixtures/units_raw_db_math.rs");
    let (report, io_errors) = units::lint_paths(&[fixture], &allow);
    assert!(io_errors.is_empty(), "{io_errors:?}");
    for code in ["UN001", "UN002", "UN003"] {
        assert!(
            report.diagnostics.iter().any(|d| d.code == code),
            "fixture must trip {code}:\n{}",
            report.render()
        );
    }
}

#[test]
fn fig3_schematic_has_expected_sdf_profile() {
    let (_, graph) = wlan_sim::lintable::graphs().remove(0);
    let analysis = sdf::analyze(&graph).expect("fig3 is rate-consistent");
    // rf_in emits 4096-sample frames; the chain is unit-rate until the
    // 4:1 decimator, so one schedule iteration fires the interior
    // blocks 4096× and everything past the decimator 1024×.
    assert_eq!(analysis.repetitions.first(), Some(&1));
    assert_eq!(analysis.repetitions.last(), Some(&1024));
    assert_eq!(analysis.max_edge_bound(), 4096);
    assert_eq!(analysis.edge_bounds.last(), Some(&1024));
}

/// Per-fixture expectations: `(code, name that must appear)`.
type Expected = &'static [(&'static str, &'static str)];

#[test]
fn known_bad_netlist_fixtures_are_rejected_with_names() {
    let fixtures: [(&str, &str, Expected); 3] = [
        (
            "floating_node",
            include_str!("../../crates/lint/fixtures/floating_node.net"),
            // (code, name that must appear in subject or message)
            &[("AMS007", "n2"), ("AMS008", "n1"), ("AMS009", "out")],
        ),
        (
            "singular",
            include_str!("../../crates/lint/fixtures/singular.net"),
            &[("AMS005", "n1"), ("AMS009", "out"), ("AMS010", "a2")],
        ),
        (
            "bad_params",
            include_str!("../../crates/lint/fixtures/bad_params.net"),
            &[("AMS004", "fc"), ("AMS004", "order"), ("AMS004", "ripple")],
        ),
    ];
    for (name, text, expected) in fixtures {
        let findings = ams::lint_netlist(name, text, "rf", "out");
        assert!(
            findings.iter().any(|d| d.severity == Severity::Error),
            "{name} must be rejected"
        );
        for (code, needle) in expected {
            assert!(
                findings.iter().any(|d| d.code == *code
                    && (d.subject.contains(needle) || d.message.contains(needle))),
                "{name}: expected {code} naming '{needle}', got {findings:?}"
            );
        }
    }
}

#[test]
fn known_bad_graphs_are_rejected_with_names() {
    // Inconsistent rate pair: a 2:1 decimated branch summed with the
    // undecimated branch.
    let mut g = Graph::new();
    let src = g.add(SourceBlock::new("src", vec![Complex::ONE; 16], 8));
    let fork = g.add(wlan_dataflow::blocks::ForkBlock::new("fork"));
    let dec = g.add(DecimateBlock::new("dec2", 2));
    let add = g.add(wlan_dataflow::blocks::AddBlock::new("sum"));
    let sink = g.add(NullSink::new("sink"));
    g.connect(src, 0, fork, 0).unwrap();
    g.connect(fork, 0, dec, 0).unwrap();
    g.connect(dec, 0, add, 0).unwrap();
    g.connect(fork, 1, add, 1).unwrap();
    g.connect(add, 0, sink, 0).unwrap();
    let findings = dataflow::lint_graph("rate_pair", &g);
    assert!(findings.iter().any(|d| d.code == "DF005"), "{findings:?}");

    // Zero-delay feedback loop: both the scheduling cycle and the SDF
    // deadlock must be reported, naming the loop members.
    let mut g = Graph::new();
    let src = g.add(SourceBlock::new("src", vec![Complex::ONE; 4], 4));
    let add = g.add(wlan_dataflow::blocks::AddBlock::new("fb_add"));
    let id = g.add(FnBlock::new("fb_id", |x: &[Complex]| x.to_vec()));
    g.connect(src, 0, add, 0).unwrap();
    g.connect(add, 0, id, 0).unwrap();
    g.connect(id, 0, add, 1).unwrap();
    let findings = dataflow::lint_graph("zero_delay_loop", &g);
    for code in ["DF002", "DF006"] {
        let d = findings
            .iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("expected {code}: {findings:?}"));
        assert!(
            d.message.contains("fb_add") || d.subject.contains("fb_add"),
            "{code} must name the loop: {d:?}"
        );
    }
}

#[test]
fn buffer_bounds_are_tight_against_an_actual_run() {
    // An 802.11a-flavored chain: 80 Msps scene → unit-rate front end →
    // 4:1 decimation to 20 Msps. The SDF bound for each edge must
    // equal the largest frame actually carried across it.
    let frame = 256usize;
    let total = 1024usize;
    let mut g = Graph::new();
    let src = g.add(SourceBlock::new("scene", vec![Complex::ONE; total], frame));
    let fe = g.add(FnBlock::new("front_end", |x: &[Complex]| x.to_vec()));
    let dec = g.add(DecimateBlock::new("dec4", 4));
    let probe = Probe::new();
    let sink = g.add(probe.block("bb"));
    g.connect(src, 0, fe, 0).unwrap();
    g.connect(fe, 0, dec, 0).unwrap();
    g.connect(dec, 0, sink, 0).unwrap();

    let analysis = sdf::analyze(&g).expect("consistent");
    assert_eq!(analysis.edge_bounds, vec![frame, frame, frame / 4]);

    Simulation::new().run(&mut g).unwrap();
    // Tightness: the runtime actually fills the bound (a frame per
    // tick), so the bound is achieved, not merely respected.
    assert_eq!(probe.len(), total / 4);
}
