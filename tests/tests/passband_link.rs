//! Passband-representation integration: the 802.11a burst carried on a
//! real IF carrier, demodulated back, and decoded — the "passband model"
//! path of the paper's rflib, exercised end to end.

use wlan_dsp::hilbert::Hilbert;
use wlan_dsp::resample::{Downsampler, Upsampler};
use wlan_dsp::Complex;
use wlan_phy::{Rate, Receiver, Transmitter};
use wlan_rf::passband::{from_passband, to_passband};

/// Upsample ×16 (20 → 320 Msps), modulate onto an 80 MHz IF, demodulate
/// with a quadrature LO, decimate back, decode.
#[test]
fn if_roundtrip_decodes() {
    let psdu: Vec<u8> = (0..120).map(|i| (i * 7) as u8).collect();
    let burst = Transmitter::new(Rate::R24).transmit(&psdu);

    let osr = 16;
    let fs = 20e6 * osr as f64;
    let f_if = 80e6;

    let mut up = Upsampler::new(osr, 32);
    let mut padded = burst.samples.clone();
    padded.extend(std::iter::repeat_n(Complex::ZERO, 64));
    let hi = up.process(&padded);

    let pb = to_passband(&hi, f_if, fs);
    let env = from_passband(&pb, f_if, 12e6, fs);

    let mut down = Downsampler::new(osr, 128);
    let back = down.process(&env);

    let got = Receiver::new()
        .receive(&back)
        .expect("decodes after IF roundtrip");
    assert_eq!(got.psdu, psdu);
    assert!(got.evm_db() < -25.0, "EVM {}", got.evm_db());
}

/// The same IF signal demodulated via the Hilbert (analytic-signal)
/// route instead of a quadrature LO: analytic signal, then a complex
/// downshift.
#[test]
fn hilbert_demodulation_route() {
    let psdu: Vec<u8> = (0..80).map(|i| (i * 13) as u8).collect();
    let burst = Transmitter::new(Rate::R12).transmit(&psdu);

    let osr = 16;
    let fs = 20e6 * osr as f64;
    let f_if = 80e6;

    let mut up = Upsampler::new(osr, 32);
    let mut padded = burst.samples.clone();
    padded.extend(std::iter::repeat_n(Complex::ZERO, 64));
    let hi = up.process(&padded);
    let pb = to_passband(&hi, f_if, fs);

    // Analytic signal, then shift −f_if.
    let mut hilbert = Hilbert::new(127);
    let analytic = hilbert.process(&pb);
    let w = -2.0 * std::f64::consts::PI * f_if / fs;
    let env: Vec<Complex> = analytic
        .iter()
        .enumerate()
        .map(|(n, &z)| z * Complex::cis(w * n as f64))
        .collect();

    let mut down = Downsampler::new(osr, 128);
    let back = down.process(&env);

    let got = Receiver::new()
        .receive(&back)
        .expect("decodes via the Hilbert route");
    assert_eq!(got.psdu, psdu);
}

/// A real passband mixer stage (IF 80 → 20 MHz) inserted mid-chain:
/// the image-reject consideration the double-conversion architecture is
/// designed around, exercised with real multiplication.
#[test]
fn real_mixer_if_conversion_decodes() {
    use wlan_rf::passband::RealMixer;

    let psdu: Vec<u8> = (0..60).map(|i| (i * 29) as u8).collect();
    let burst = Transmitter::new(Rate::R6).transmit(&psdu);

    let osr = 16;
    let fs = 20e6 * osr as f64;
    let f_if1 = 80e6;
    let f_lo = 60e6; // difference product at 20 MHz
    let f_if2 = 20e6;

    let mut up = Upsampler::new(osr, 32);
    let mut padded = burst.samples.clone();
    padded.extend(std::iter::repeat_n(Complex::ZERO, 64));
    let hi = up.process(&padded);
    let pb = to_passband(&hi, f_if1, fs);

    // Real mixing creates the 20 MHz difference and 140 MHz sum; the
    // quadrature demodulator at 20 MHz with a 12 MHz lowpass selects the
    // difference product. Gain 2 compensates the cos·cos = ½ loss.
    let mut mixer = RealMixer::new(f_lo, fs);
    let mixed: Vec<f64> = mixer.process(&pb).iter().map(|v| 2.0 * v).collect();
    let env = from_passband(&mixed, f_if2, 12e6, fs);

    let mut down = Downsampler::new(osr, 128);
    let back = down.process(&env);

    let got = Receiver::new()
        .receive(&back)
        .expect("decodes after a real mixer stage");
    assert_eq!(got.psdu, psdu);
}
