//! Smoke runs of every paper experiment at quick effort: each must
//! produce a well-formed table and its documented qualitative shape.

use wlan_phy::Rate;
use wlan_sim::experiments::*;

#[test]
fn table1_smoke() {
    let t = table1::run();
    assert_eq!(t.len(), 4);
    assert!(!t.to_csv().is_empty());
}

#[test]
fn fig4_smoke() {
    let r = fig4::run(1);
    assert!((r.adjacent_dbm - r.wanted_dbm - 16.0).abs() < 1.5);
    assert!(r.table().len() > 10);
}

#[test]
fn fig5_smoke() {
    let r = fig5::run(Effort::quick(), 4, 2);
    assert_eq!(r.points.len(), 4);
    assert!(r.points.iter().all(|p| p.ber.is_finite() && p.ber <= 1.0));
}

#[test]
fn fig6_smoke() {
    let r = fig6::run(Effort::quick(), -45.0, -10.0, 3, 3);
    assert_eq!(r.points.len(), 3);
    // The adjacent series can never beat the alone series by much.
    for p in &r.points {
        assert!(p.ber_adjacent + 0.25 >= p.ber_alone, "{p:?}");
    }
}

#[test]
fn table2_smoke() {
    let r = table2::run(&[1], 40, 4, 4);
    assert!(r.rows[0].ratio() > 1.0);
}

#[test]
fn ip3_smoke() {
    let r = ip3::run(Effort::quick(), -35.0, -5.0, 3, 5, &wlan_phy::IEEE_802_11A);
    assert_eq!(r.points.len(), 3);
    assert!(r.points[0].ber >= r.points[2].ber);
}

#[test]
fn nf_smoke() {
    let r = noise_figure::run(Effort::quick(), -80.0, 2, 6);
    assert_eq!(r.points.len(), 2);
}

#[test]
fn evm_smoke() {
    let r = evm::run(Rate::R24, &[20.0, 30.0], 100, 7);
    assert_eq!(r.points.len(), 2);
    assert!(r.points[0].evm_db > r.points[1].evm_db);
}

#[test]
fn rf_char_smoke() {
    let r = rf_char::run(8);
    assert!(r.worst_error() < 1.0);
}

#[test]
fn ber_snr_smoke() {
    let r = ber_snr::run(Effort::quick(), &[10.0, 24.0], 9, &wlan_phy::IEEE_802_11A);
    assert_eq!(r.points.len(), 16);
}
