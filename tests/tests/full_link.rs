//! End-to-end link integration: every rate, through channel impairments
//! and the RF front-end, decoded by the full blind receiver.

use wlan_channel::awgn::Awgn;
use wlan_dsp::{Complex, Rng};
use wlan_phy::params::{ALL_RATES, SAMPLE_RATE};
use wlan_phy::{Receiver, Transmitter};
use wlan_sim::link::{FrontEnd, LinkConfig, LinkSimulation};

#[test]
fn all_rates_loop_through_awgn() {
    let mut rng = Rng::new(100);
    let rx = Receiver::new();
    // Per-rate SNR margins (roughly 802.11a sensitivity deltas).
    let snrs = [8.0, 10.0, 10.0, 13.0, 16.0, 19.0, 23.0, 25.0];
    for (rate, snr) in ALL_RATES.into_iter().zip(snrs) {
        let mut psdu = vec![0u8; 300];
        rng.bytes(&mut psdu);
        let burst = Transmitter::new(rate).transmit(&psdu);
        let mut ch = Awgn::new(7 + rate.mbps() as u64);
        let noisy = ch.add_noise_power(&burst.samples, wlan_dsp::math::db_to_lin(-snr));
        let got = rx
            .receive(&noisy)
            .unwrap_or_else(|e| panic!("{rate} at {snr} dB: {e}"));
        assert_eq!(got.psdu, psdu, "{rate} at {snr} dB");
        assert_eq!(got.signal.rate, rate);
    }
}

#[test]
fn cfo_multipath_and_level_combined() {
    // The harshest combination the blind receiver must handle: carrier
    // offset near the 802.11a ±20 ppm limit (±232 kHz at 5.8 GHz),
    // two-ray multipath inside the guard interval, 40 dB of level swing.
    let mut rng = Rng::new(5);
    let rx = Receiver::new();
    let mut psdu = vec![0u8; 200];
    rng.bytes(&mut psdu);
    let burst = Transmitter::new(wlan_phy::Rate::R12).transmit(&psdu);

    let cfo = 210e3;
    let w = 2.0 * std::f64::consts::PI * cfo / SAMPLE_RATE;
    let gain = 0.01; // −40 dB
    let mut x = vec![Complex::ZERO; burst.samples.len() + 300];
    for (n, &s) in burst.samples.iter().enumerate() {
        let v = s * Complex::cis(w * (100 + n) as f64) * gain;
        x[100 + n] += v;
        x[100 + n + 6] += v * Complex::from_polar(0.35, 2.0);
    }
    let mut ch = Awgn::new(9);
    let noisy = ch.add_noise_power(&x, (gain * gain) * 1e-2); // 20 dB SNR
    let got = rx.receive(&noisy).expect("decodes under combined stress");
    assert_eq!(got.psdu, psdu);
    assert!(
        (got.cfo_hz - cfo).abs() < 10e3,
        "cfo estimate {}",
        got.cfo_hz
    );
}

#[test]
fn back_to_back_packets_both_found() {
    // Two bursts separated by idle time: the receiver finds the first;
    // after trimming, it finds the second.
    let mut rng = Rng::new(6);
    let rx = Receiver::new();
    let mut p1 = vec![0u8; 80];
    let mut p2 = vec![0u8; 120];
    rng.bytes(&mut p1);
    rng.bytes(&mut p2);
    let b1 = Transmitter::new(wlan_phy::Rate::R24).transmit(&p1);
    let b2 = Transmitter::new(wlan_phy::Rate::R6).transmit(&p2);
    let mut x = Vec::new();
    let noise = |rng: &mut Rng, n: usize| -> Vec<Complex> {
        (0..n).map(|_| rng.complex_gaussian(1e-4)).collect()
    };
    x.extend(noise(&mut rng, 300));
    x.extend_from_slice(&b1.samples);
    x.extend(noise(&mut rng, 500));
    let second_start = x.len();
    x.extend_from_slice(&b2.samples);
    x.extend(noise(&mut rng, 300));

    let got1 = rx.receive(&x).expect("first packet");
    assert_eq!(got1.psdu, p1);
    let got2 = rx.receive(&x[second_start - 100..]).expect("second packet");
    assert_eq!(got2.psdu, p2);
}

#[test]
fn rf_front_end_sensitivity_at_spec_minimum() {
    // The paper's §2.2 input range bottom: −88 dBm must still decode at
    // 6 Mbit/s through the full RF chain.
    let report = LinkSimulation::new(LinkConfig {
        rate: wlan_phy::Rate::R6,
        psdu_len: 100,
        packets: 4,
        seed: 77,
        rx_level_dbm: -88.0,
        front_end: FrontEnd::RfBaseband(wlan_rf::receiver::RfConfig::default()),
        ..LinkConfig::default()
    })
    .run();
    assert!(
        report.ber() < 1e-2,
        "sensitivity failed: BER {} PER {}",
        report.ber(),
        report.per()
    );
}

#[test]
fn rf_front_end_maximum_level() {
    // Top of the input range: −23 dBm must not overload the default
    // front end into failure.
    let report = LinkSimulation::new(LinkConfig {
        rate: wlan_phy::Rate::R24,
        psdu_len: 100,
        packets: 3,
        seed: 78,
        rx_level_dbm: -23.0,
        front_end: FrontEnd::RfBaseband(wlan_rf::receiver::RfConfig::default()),
        ..LinkConfig::default()
    })
    .run();
    assert_eq!(report.ber(), 0.0, "overload at −23 dBm: {}", report.per());
}
