//! Reproducibility: the whole stack must be bit-exactly deterministic
//! for a given seed — the property that makes Monte-Carlo BER sweeps
//! and regression comparisons meaningful.

use wlan_phy::Rate;
use wlan_rf::receiver::RfConfig;
use wlan_sim::link::{AdjacentChannel, FrontEnd, LinkConfig, LinkSimulation};

fn config(seed: u64, front_end: FrontEnd) -> LinkConfig {
    LinkConfig {
        rate: Rate::R24,
        psdu_len: 80,
        packets: 3,
        seed,
        rx_level_dbm: -70.0,
        adjacent: Some(AdjacentChannel {
            offset_hz: 20e6,
            rel_db: 10.0,
        }),
        front_end,
        ..LinkConfig::default()
    }
}

#[test]
fn same_seed_same_result_ideal() {
    let cfg = LinkConfig {
        snr_db: Some(9.0),
        front_end: FrontEnd::Ideal,
        adjacent: None,
        ..config(7, FrontEnd::Ideal)
    };
    let a = LinkSimulation::new(cfg.clone()).run();
    let b = LinkSimulation::new(cfg).run();
    assert_eq!(a.meter.errors(), b.meter.errors());
    assert_eq!(a.meter.bits(), b.meter.bits());
    assert_eq!(a.decoded_packets, b.decoded_packets);
    assert_eq!(a.evm_db, b.evm_db);
}

#[test]
fn same_seed_same_result_rf_baseband() {
    // The full noisy RF chain — thermal, flicker, phase noise — must
    // still be reproducible from the master seed.
    let cfg = config(11, FrontEnd::RfBaseband(RfConfig::default()));
    let a = LinkSimulation::new(cfg.clone()).run();
    let b = LinkSimulation::new(cfg).run();
    assert_eq!(a.meter.errors(), b.meter.errors());
    assert_eq!(a.evm_db, b.evm_db);
}

#[test]
fn different_seeds_differ() {
    // At a marginal SNR the error patterns must differ between seeds
    // (i.e. the seed actually drives the randomness).
    let mk = |seed| {
        LinkSimulation::new(LinkConfig {
            snr_db: Some(8.5),
            adjacent: None,
            front_end: FrontEnd::Ideal,
            packets: 6,
            ..config(seed, FrontEnd::Ideal)
        })
        .run()
        .meter
        .errors()
    };
    let results: Vec<u64> = (0..4).map(|s| mk(100 + s)).collect();
    assert!(
        results.windows(2).any(|w| w[0] != w[1]),
        "all seeds produced identical error counts: {results:?}"
    );
}

#[test]
fn experiments_are_reproducible() {
    use wlan_sim::experiments::{fig5, Effort};
    let a = fig5::run(Effort::quick(), 3, 5);
    let b = fig5::run(Effort::quick(), 3, 5);
    for (x, y) in a.points.iter().zip(b.points.iter()) {
        assert_eq!(x.ber, y.ber);
        assert_eq!(x.bits, y.bits);
    }
}

#[test]
fn cosim_is_deterministic() {
    let cfg = LinkConfig {
        adjacent: None,
        ..config(13, FrontEnd::default_cosim())
    };
    let a = LinkSimulation::new(cfg.clone()).run();
    let b = LinkSimulation::new(cfg).run();
    assert_eq!(a.meter.errors(), b.meter.errors());
    assert_eq!(a.evm_db, b.evm_db);
}
