//! Mixed-signal co-simulation integration: netlist → analog solver →
//! full link, and agreement with the baseband abstraction level.

use wlan_ams::CosimReceiver;
use wlan_phy::Rate;
use wlan_rf::receiver::RfConfig;
use wlan_sim::link::{FrontEnd, LinkConfig, LinkSimulation};

fn link(front_end: FrontEnd, packets: usize, level: f64, seed: u64) -> wlan_sim::LinkReport {
    LinkSimulation::new(LinkConfig {
        rate: Rate::R24,
        psdu_len: 100,
        packets,
        seed,
        rx_level_dbm: level,
        front_end,
        ..LinkConfig::default()
    })
    .run()
}

#[test]
fn cosim_link_decodes_cleanly() {
    let report = link(
        FrontEnd::RfCosim {
            filter_edge_hz: 10e6,
            analog_osr: 4,
            noise_workaround: false,
        },
        2,
        -50.0,
        1,
    );
    assert_eq!(report.ber(), 0.0, "per {}", report.per());
    assert!(report.evm_db.unwrap() < -20.0);
}

#[test]
fn abstraction_levels_agree_at_high_snr() {
    // Where noise is irrelevant, both abstraction levels must give the
    // same verdict (error-free) and comparable EVM.
    let mut rf = RfConfig {
        noise_enabled: false,
        ..RfConfig::default()
    };
    rf.mixer2.iq_gain_imbalance_db = wlan_units::Db(0.0);
    rf.mixer2.iq_phase_imbalance_deg = 0.0;
    rf.mixer1.lo_linewidth_hz = wlan_units::Hz(0.0);
    rf.mixer2.lo_linewidth_hz = wlan_units::Hz(0.0);
    rf.mixer2.flicker_corner_hz = None;
    let bb = link(FrontEnd::RfBaseband(rf), 2, -45.0, 2);
    let cs = link(
        FrontEnd::RfCosim {
            filter_edge_hz: 10e6,
            analog_osr: 8,
            noise_workaround: false,
        },
        2,
        -45.0,
        2,
    );
    assert_eq!(bb.ber(), 0.0);
    assert_eq!(cs.ber(), 0.0);
    let (e1, e2) = (bb.evm_db.unwrap(), cs.evm_db.unwrap());
    assert!(
        (e1 - e2).abs() < 8.0,
        "abstraction levels disagree: baseband {e1} dB, cosim {e2} dB"
    );
}

#[test]
fn noise_workaround_restores_pessimism() {
    // Near sensitivity, the noiseless co-sim is optimistic; the paper's
    // workaround (noise injected in the discrete-time part) restores a
    // realistic failure.
    let optimistic = link(FrontEnd::default_cosim(), 3, -92.0, 3);
    let realistic = link(
        FrontEnd::RfCosim {
            filter_edge_hz: 10e6,
            analog_osr: 4,
            noise_workaround: true,
        },
        3,
        -92.0,
        3,
    );
    assert!(
        optimistic.ber() < realistic.ber() + 1e-12,
        "optimistic {} vs realistic {}",
        optimistic.ber(),
        realistic.ber()
    );
    assert!(realistic.ber() > 0.01, "workaround noise too weak");
}

#[test]
fn custom_netlist_round_trip() {
    // Author a netlist variant, elaborate, and process samples.
    let text = "\
amp1 amp     rf  a   gain=20 p1db=-10
hp1  hpf     a   b   fc=200k
lp1  cheb_lp b   out order=4 ripple=1.0 edge=8M
";
    let mut rx = CosimReceiver::from_netlist(text, 80e6, 4, 4).expect("elaborates");
    assert_eq!(rx.device_names(), vec!["amp1", "hp1", "lp1"]);
    let x: Vec<wlan_dsp::Complex> = (0..4000)
        .map(|n| wlan_dsp::Complex::from_polar(1e-3, 0.1 * n as f64))
        .collect();
    let y = rx.process(&x);
    assert_eq!(y.len(), 1000);
    assert!(y.iter().all(|v| v.is_finite()));
}

#[test]
fn analog_osr_does_not_change_the_answer() {
    // Finer integration must refine, not change, the result: both OSRs
    // decode the same packet with similar EVM.
    let a = link(
        FrontEnd::RfCosim {
            filter_edge_hz: 10e6,
            analog_osr: 2,
            noise_workaround: false,
        },
        1,
        -50.0,
        4,
    );
    let b = link(
        FrontEnd::RfCosim {
            filter_edge_hz: 10e6,
            analog_osr: 16,
            noise_workaround: false,
        },
        1,
        -50.0,
        4,
    );
    assert_eq!(a.ber(), 0.0);
    assert_eq!(b.ber(), 0.0);
    assert!((a.evm_db.unwrap() - b.evm_db.unwrap()).abs() < 4.0);
}
