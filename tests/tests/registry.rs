//! The experiment registry contract: every paper experiment is
//! reachable through the `Experiment` trait exactly once, the
//! `wlansim list` table mirrors the registry, snapshot keys are unique
//! within a run, and the trait path is bit-identical to the legacy
//! free-function estimators the goldens were blessed against.

use wlan_phy::Rate;
use wlan_sim::experiments::*;

/// The module list from the paper-mapping table in
/// `experiments/mod.rs`, plus the design-flow driver. One registry
/// entry per module, no more, no less.
const EXPECTED: &[&str] = &[
    "table1",
    "fading",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "table2",
    "ip3",
    "noise_figure",
    "evm",
    "rf_char",
    "level_sweep",
    "blocking",
    "cfo",
    "constellation",
    "ber_snr",
    "design_flow",
];

#[test]
fn every_paper_module_registered_exactly_once() {
    let names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
    for want in EXPECTED {
        let hits = names.iter().filter(|n| *n == want).count();
        assert_eq!(hits, 1, "experiment '{want}' registered {hits} times");
    }
    assert_eq!(
        names.len(),
        EXPECTED.len(),
        "unexpected registry entries: {names:?}"
    );
}

#[test]
fn find_resolves_every_registered_name() {
    for e in registry() {
        let found = find(e.name()).expect("find() resolves a registered name");
        assert_eq!(found.name(), e.name());
        assert!(!e.paper_ref().is_empty(), "{} paper_ref", e.name());
        assert!(!e.describe().is_empty(), "{} describe", e.name());
    }
    assert!(find("no_such_experiment").is_none());
}

#[test]
fn list_table_matches_registry() {
    // `wlansim list` prints exactly this table; its rows must be the
    // registry in registry order.
    let t = registry_table();
    assert_eq!(t.len(), registry().len());
    for (row, e) in t.rows().iter().zip(registry()) {
        assert_eq!(row[0], e.name());
        assert_eq!(row[1], e.paper_ref());
        assert_eq!(row[2], e.describe());
    }
}

/// Cheap stand-ins for the experiments whose defaults are too slow for
/// a unit gate: same code paths, minimal sweep sizes.
fn cheap_instances() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(table1::Table1),
        Box::new(fading::FadingSweep {
            rate: Rate::R12,
            snr_db: wlan_units::Db(30.0),
            trms_list: &[50e-9, 100e-9],
        }),
        Box::new(fig4::Fig4Spectrum),
        Box::new(fig6::Fig6Sweep {
            lo_dbm: wlan_units::Dbm(-45.0),
            hi_dbm: wlan_units::Dbm(-10.0),
            points: 2,
        }),
        Box::new(ip3::Ip3Sweep {
            lo_dbm: wlan_units::Dbm(-35.0),
            hi_dbm: wlan_units::Dbm(-5.0),
            points: 2,
        }),
        Box::new(noise_figure::NfSweep {
            rx_level_dbm: wlan_units::Dbm(-80.0),
            points: 2,
        }),
        Box::new(evm::EvmSweep {
            rates: &[Rate::R12, Rate::R24],
            snrs_db: &[20.0, 30.0],
            psdu_len: 100,
        }),
        Box::new(rf_char::RfChar),
        Box::new(level_sweep::LevelSweep {
            rate: Rate::R12,
            lo_dbm: wlan_units::Dbm(-90.0),
            hi_dbm: wlan_units::Dbm(-40.0),
            points: 2,
        }),
        Box::new(blocking::BlockingSweep {
            rate: Rate::R12,
            lo_db: wlan_units::Db(10.0),
            hi_db: wlan_units::Db(30.0),
            points: 2,
        }),
        Box::new(cfo::CfoSweep {
            rate: Rate::R24,
            max_hz: wlan_units::Hz(400e3),
            points: 3,
        }),
        Box::new(ber_snr::BerSnrGrid {
            snrs_db: &[12.0, 24.0],
        }),
    ]
}

#[test]
fn snapshot_keys_unique_and_finite_shape() {
    for exp in cheap_instances() {
        let mut ctx = RunContext::serial_reference(Effort::quick(), 11);
        let out = execute(exp.as_ref(), &mut ctx);
        // table1 is a static standards table: no numeric fields.
        if exp.name() != "table1" {
            assert!(!out.snapshot.is_empty(), "{} empty snapshot", exp.name());
        }
        let mut keys: Vec<&str> = out.snapshot.iter().map(|(k, _)| k.as_str()).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(
            keys.len(),
            n,
            "{} has duplicate snapshot keys: {:?}",
            exp.name(),
            out.snapshot.iter().map(|(k, _)| k).collect::<Vec<_>>()
        );
        // One telemetry record per executed experiment.
        assert_eq!(ctx.telemetry.records.len(), 1);
        assert_eq!(ctx.telemetry.records[0].name, exp.name());
    }
}

#[test]
fn trait_run_bit_identical_to_legacy_level_sweep() {
    const EXP: level_sweep::LevelSweep = level_sweep::LevelSweep {
        rate: Rate::R12,
        lo_dbm: wlan_units::Dbm(-90.0),
        hi_dbm: wlan_units::Dbm(-40.0),
        points: 3,
    };
    let mut ctx = RunContext::serial_reference(Effort::quick(), 3);
    let via_trait = execute(&EXP, &mut ctx).snapshot;
    let legacy = level_sweep::run(Effort::quick(), Rate::R12, -90.0, -40.0, 3, 3).snapshot();
    assert_eq!(via_trait, legacy);
}

#[test]
fn trait_run_bit_identical_to_legacy_evm() {
    // Single-rate EvmSweep must keep the legacy un-prefixed keys the
    // pinned goldens were blessed with.
    const EXP: evm::EvmSweep = evm::EvmSweep {
        rates: &[Rate::R36],
        snrs_db: &[15.0, 35.0],
        psdu_len: 100,
    };
    let mut ctx = RunContext::serial_reference(Effort::quick(), 1);
    let via_trait = execute(&EXP, &mut ctx).snapshot;
    let legacy = evm::run(Rate::R36, &[15.0, 35.0], 100, 1).snapshot();
    assert_eq!(via_trait, legacy);
    assert!(via_trait.iter().all(|(k, _)| !k.starts_with("r36.")));
}

#[test]
fn trait_run_bit_identical_to_legacy_blocking() {
    const EXP: blocking::BlockingSweep = blocking::BlockingSweep {
        rate: Rate::R12,
        lo_db: wlan_units::Db(10.0),
        hi_db: wlan_units::Db(30.0),
        points: 2,
    };
    let mut ctx = RunContext::serial_reference(Effort::quick(), 5);
    let via_trait = execute(&EXP, &mut ctx).snapshot;
    let legacy = blocking::run(
        Effort::quick(),
        Rate::R12,
        10.0,
        30.0,
        2,
        5,
        &wlan_phy::IEEE_802_11A,
    )
    .snapshot();
    assert_eq!(via_trait, legacy);
}

#[test]
fn execute_records_manifest_ready_telemetry() {
    const EXP: ip3::Ip3Sweep = ip3::Ip3Sweep {
        lo_dbm: wlan_units::Dbm(-35.0),
        hi_dbm: wlan_units::Dbm(-5.0),
        points: 2,
    };
    let mut ctx = RunContext::serial_reference(Effort::quick(), 7);
    let out = execute(&EXP, &mut ctx);
    let rec = &ctx.telemetry.records[0];
    assert_eq!(rec.points.len(), out.points.len());
    assert!(rec.wall >= std::time::Duration::ZERO);
    assert!(rec.serial);
    assert_eq!(rec.threads, 1);
    // The manifest produced from this sink must pass the conformance
    // validator — the same gate CI applies to `wlansim` output.
    let manifest = wlan_sim::manifest::RunManifest::from_sink(&ctx.telemetry);
    let errs = wlan_conformance::manifest::validate(&manifest.render());
    assert!(errs.is_empty(), "{errs:?}");
}
