//! The paper's design-flow integration: characterize RF models (meas ×
//! rf), then verify the same models inside the system link (sim), and
//! check the two views agree.

use wlan_dsp::{Complex, Rng};
use wlan_meas::compression::measure_p1db;
use wlan_meas::twotone::measure_iip3;
use wlan_rf::nonlinearity::{cubic_p1db_from_iip3, Nonlinearity};
use wlan_rf::receiver::RfConfig;
use wlan_rf::Amplifier;
use wlan_sim::link::{FrontEnd, LinkConfig, LinkSimulation};
use wlan_units::{Db, Dbm};

#[test]
fn characterized_p1db_predicts_link_failure_point() {
    // Characterize an LNA's P1dB, then confirm the link breaks when the
    // composite input level approaches it and survives well below it.
    let p1_spec = -25.0;
    let fs = 80e6;
    let mut lna = Amplifier::new(
        Db(15.0),
        Db(3.0),
        Nonlinearity::rapp(Dbm(p1_spec)),
        fs,
        Rng::new(1),
    );
    lna.set_noise_enabled(false);
    let mut dev = |x: &[Complex]| lna.process(x);
    let m = measure_p1db(&mut dev, 1e6, Dbm(-55.0), Dbm(-10.0), Db(1.0), fs, 4000);
    let p1_measured = m.p1db_in_dbm.expect("compression found");
    assert!((p1_measured.0 - p1_spec).abs() < 0.5);

    let ber_at = |rx_level: f64| {
        let rf = RfConfig {
            lna_nonlinearity: Nonlinearity::rapp(Dbm(p1_spec)),
            ..RfConfig::default()
        };
        LinkSimulation::new(LinkConfig {
            rate: wlan_phy::Rate::R54,
            psdu_len: 80,
            packets: 2,
            seed: 11,
            rx_level_dbm: rx_level,
            front_end: FrontEnd::RfBaseband(rf),
            ..LinkConfig::default()
        })
        .run()
        .ber()
    };
    // 20 dB below P1dB: linear. ~12 dB above (OFDM PAPR bites): broken.
    assert_eq!(ber_at(p1_measured.0 - 20.0), 0.0);
    assert!(ber_at(p1_measured.0 + 12.0) > 0.05);
}

#[test]
fn cubic_consistency_iip3_vs_p1db() {
    // The two characterization harnesses must agree with the analytic
    // 9.6 dB relation on the same cubic device.
    let iip3 = -12.0;
    let nl = Nonlinearity::Cubic {
        iip3_dbm: Dbm(iip3),
    };
    let mut dev = |x: &[Complex]| -> Vec<Complex> { x.iter().map(|&u| nl.apply(u, 2.0)).collect() };
    let m3 = measure_iip3(&mut dev, 1e6, 1.31e6, Dbm(iip3 - 30.0), 80e6, 40_000);
    let mc = measure_p1db(&mut dev, 1e6, Dbm(-50.0), Dbm(-10.0), Db(0.5), 80e6, 4000);
    let p1 = mc.p1db_in_dbm.expect("found");
    assert!((m3.iip3_dbm.0 - iip3).abs() < 0.3);
    assert!((p1 - cubic_p1db_from_iip3(Dbm(iip3))).0.abs() < 0.4);
    assert!(((m3.iip3_dbm - p1).0 - 9.64).abs() < 0.6);
}

#[test]
fn front_end_preserves_ofdm_evm_budget() {
    // The default front end at a comfortable level must keep the link's
    // EVM within a 64-QAM-capable budget (< −25 dB).
    let report = LinkSimulation::new(LinkConfig {
        rate: wlan_phy::Rate::R54,
        psdu_len: 120,
        packets: 3,
        seed: 21,
        rx_level_dbm: -45.0,
        front_end: FrontEnd::RfBaseband(RfConfig::default()),
        ..LinkConfig::default()
    })
    .run();
    assert_eq!(report.ber(), 0.0);
    let evm = report.evm_db.expect("decoded");
    assert!(evm < -22.0, "EVM {evm} dB too poor for 64-QAM");
}

#[test]
fn iq_imbalance_dominates_evm_when_large() {
    // Crank the IQ imbalance and watch the EVM floor move accordingly —
    // the "verification of the RF design in the DSP environment" loop.
    let evm_with = |gain_imb: f64, phase_imb: f64| {
        let mut rf = RfConfig {
            noise_enabled: false,
            ..RfConfig::default()
        };
        rf.mixer2.iq_gain_imbalance_db = Db(gain_imb);
        rf.mixer2.iq_phase_imbalance_deg = phase_imb;
        rf.mixer1.lo_linewidth_hz = wlan_units::Hz(0.0);
        rf.mixer2.lo_linewidth_hz = wlan_units::Hz(0.0);
        rf.mixer2.flicker_corner_hz = None;
        LinkSimulation::new(LinkConfig {
            rate: wlan_phy::Rate::R24,
            psdu_len: 100,
            packets: 2,
            seed: 31,
            rx_level_dbm: -50.0,
            front_end: FrontEnd::RfBaseband(rf),
            ..LinkConfig::default()
        })
        .run()
        .evm_db
        .expect("decoded")
    };
    let clean = evm_with(0.0, 0.0);
    let dirty = evm_with(1.0, 5.0);
    assert!(
        dirty > clean + 6.0,
        "IQ imbalance not visible: clean {clean}, dirty {dirty}"
    );
    // ~1 dB / 5° imbalance → IRR ≈ 21 dB → EVM floor ≈ −21 dB.
    assert!(dirty > -25.0 && dirty < -14.0, "dirty EVM {dirty}");
}

#[test]
fn receiver_spec_budget_is_consistent() {
    // The Friis budget of the default chain stays under a 10 dB system
    // noise figure (needed for −88 dBm sensitivity at 6 Mbit/s).
    use wlan_rf::spec::{cascade_noise_figure_db, StageSpec};
    let cfg = RfConfig::default();
    let stages = [
        StageSpec {
            name: "lna",
            gain_db: cfg.lna_gain_db,
            nf_db: cfg.lna_nf_db,
        },
        StageSpec {
            name: "mixer1",
            gain_db: cfg.mixer1.gain_db,
            nf_db: cfg.mixer1.nf_db,
        },
        StageSpec {
            name: "mixer2",
            gain_db: cfg.mixer2.gain_db,
            nf_db: cfg.mixer2.nf_db,
        },
    ];
    let nf = cascade_noise_figure_db(&stages);
    assert!(nf < Db(10.0), "system NF {nf}");
}
