//! Profile-parameterized property tests: every [`wlan_phy::OfdmProfile`]
//! in the family must satisfy the same structural invariants as the
//! 802.11a baseline — the interleaver and puncturer round-trip over
//! each profile's rate set, the profile's FFT is an exact
//! forward∘inverse identity, and a transmitted burst decodes
//! bit-exactly through an ideal channel at ragged PSDU lengths. Cases
//! come from the workspace's deterministic generator so the suite
//! stays bit-exactly reproducible offline.

use wlan_dsp::fft::Fft;
use wlan_dsp::{Complex, Rng};
use wlan_phy::convolutional::encode;
use wlan_phy::interleaver::Interleaver;
use wlan_phy::puncture::{depuncture, expansion, puncture};
use wlan_phy::viterbi::{decode_soft, Llr};
use wlan_phy::{Receiver, Transmitter, ALL_PROFILES};

/// Interleave→deinterleave is the identity on one OFDM symbol's coded
/// bits for every rate a profile advertises.
#[test]
fn prop_interleaver_roundtrips_per_profile() {
    let mut rng = Rng::new(0x2001);
    for profile in ALL_PROFILES {
        for &rate in profile.rates {
            let il = Interleaver::new(rate);
            assert_eq!(il.block_len(), rate.ncbps(), "{} {rate}", profile.name);
            for _ in 0..4 {
                let mut bits = vec![0u8; il.block_len()];
                rng.bits(&mut bits);
                let perm = il.interleave(&bits);
                assert_eq!(il.deinterleave_bits(&perm), bits, "{} {rate}", profile.name);
            }
        }
    }
}

/// Puncture→depuncture→Viterbi recovers the message for every code
/// rate a profile's rate set exercises.
#[test]
fn prop_puncture_roundtrips_per_profile() {
    let mut rng = Rng::new(0x2002);
    for profile in ALL_PROFILES {
        for &rate in profile.rates {
            let cr = rate.code_rate();
            let (kept, period) = expansion(cr);
            // Message length chosen so the coded stream spans whole
            // puncturing periods; zero tail flushes the decoder.
            let mut msg = vec![0u8; 6 * period];
            let n = msg.len();
            rng.bits(&mut msg[..n - 6]);
            let coded = encode(&msg);
            let tx = puncture(&coded, cr);
            assert_eq!(tx.len() * period, coded.len() * kept);
            let llrs: Vec<Llr> = tx
                .iter()
                .map(|&b| if b == 1 { -1.0 } else { 1.0 })
                .collect();
            let full = depuncture(&llrs, cr);
            assert_eq!(full.len(), coded.len());
            assert_eq!(decode_soft(&full), msg, "{} {rate}", profile.name);
        }
    }
}

/// The profile's FFT is an exact inverse∘forward identity at its own
/// transform size.
#[test]
fn prop_fft_identity_per_profile() {
    let mut rng = Rng::new(0x2003);
    for profile in ALL_PROFILES {
        let fft = Fft::new(profile.fft_size);
        for case in 0..4 {
            let x: Vec<Complex> = (0..profile.fft_size)
                .map(|_| rng.complex_gaussian(1.0))
                .collect();
            let mut y = x.clone();
            fft.forward(&mut y);
            fft.inverse(&mut y);
            for (i, (got, want)) in y.iter().zip(&x).enumerate() {
                assert!(
                    (*got - *want).abs() < 1e-9,
                    "{} case {case} bin {i}: {got:?} vs {want:?}",
                    profile.name
                );
            }
        }
    }
}

/// A transmitted burst decodes bit-exactly through an ideal channel
/// for every profile at ragged PSDU lengths and rates.
#[test]
fn prop_clean_loopback_every_profile() {
    let mut meta = Rng::new(0x2004);
    for profile in ALL_PROFILES {
        for &len in &[1usize, 5, 17, 63, 100, 257] {
            let rate = profile.rates[meta.below(profile.rates.len() as u64) as usize];
            let mut rng = Rng::new(meta.next_u64());
            let mut psdu = vec![0u8; len.min(profile.max_psdu_len)];
            rng.bytes(&mut psdu);
            let burst = Transmitter::with_profile(rate, profile).transmit(&psdu);
            let got = Receiver::with_profile(profile)
                .receive(&burst.samples)
                .unwrap_or_else(|e| panic!("{} {rate} len {len}: {e:?}", profile.name));
            assert_eq!(got.psdu, psdu, "{} {rate} len {len}", profile.name);
            assert_eq!(got.signal.rate, rate, "{} len {len}", profile.name);
        }
    }
}
