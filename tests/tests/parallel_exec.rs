//! The parallel execution contract: any thread count — including one —
//! produces bit-identical sweep and Monte-Carlo BER results. This is
//! what makes the parallel engine a pure speedup rather than a
//! different experiment.

use wlan_dataflow::sweep::Sweep;
use wlan_exec::{split_seed, ThreadPool};
use wlan_meas::montecarlo::{run_sharded, EarlyStop, McPlan};
use wlan_meas::BerMeter;
use wlan_phy::Rate;
use wlan_sim::experiments::{ip3, Effort, Engine};
use wlan_sim::link::{FrontEnd, LinkConfig, LinkSimulation, McRun};

#[test]
fn sweep_run_parallel_matches_serial_for_any_thread_count() {
    let sweep = Sweep::linspace(-10.0, 10.0, 9);
    // A deterministic, moderately expensive point function.
    let eval = |p: &f64| {
        let mut acc = 0.0f64;
        for k in 1..200 {
            acc += (p * k as f64).sin() / k as f64;
        }
        (acc, p.to_bits())
    };
    let serial = sweep.run(eval);
    for threads in [1, 2, 4] {
        let par = sweep.run_parallel(&ThreadPool::new(threads), eval);
        assert_eq!(par.len(), serial.len());
        for (a, b) in par.iter().zip(serial.iter()) {
            assert_eq!(a.param, b.param, "{threads} threads");
            assert_eq!(a.result, b.result, "{threads} threads");
        }
    }
}

#[test]
fn link_ber_is_bit_identical_across_thread_counts() {
    let sim = LinkSimulation::new(LinkConfig {
        rate: Rate::R24,
        packets: 6,
        psdu_len: 50,
        seed: 77,
        snr_db: Some(9.0),
        front_end: FrontEnd::Ideal,
        ..LinkConfig::default()
    });
    let mc = McRun {
        shard_packets: 2,
        ..McRun::default()
    };
    let base = sim.run_parallel(&ThreadPool::new(1), &mc);
    assert!(base.meter.bits() > 0);
    for threads in [2, 4] {
        let r = sim.run_parallel(&ThreadPool::new(threads), &mc);
        assert_eq!(r.meter, base.meter, "{threads} threads");
        assert_eq!(r.decoded_packets, base.decoded_packets);
        assert_eq!(r.evm_db, base.evm_db);
        assert_eq!(r.packets, base.packets);
    }
}

#[test]
fn early_stopping_decisions_are_thread_invariant() {
    // A synthetic high-BER Monte-Carlo point: the Wilson interval
    // tightens fast, so the rule fires well before the shard budget —
    // and must fire after the *same* wave regardless of thread count.
    let plan = McPlan {
        shards: 64,
        wave: 4,
        early_stop: Some(EarlyStop {
            min_bits: 2_000,
            rel_width: 0.4,
            ber_floor: 1e-9,
        }),
    };
    let sim = |shard: usize| {
        let mut rng = wlan_dsp::Rng::new(split_seed(5, 0, shard as u64));
        let tx = vec![0u8; 500];
        let rx: Vec<u8> = (0..500)
            .map(|_| if rng.uniform() < 0.08 { 1 } else { 0 })
            .collect();
        let mut m = BerMeter::new();
        m.update_bits(&tx, &rx);
        m
    };
    let base = run_sharded(&ThreadPool::new(1), &plan, sim);
    assert!(base.stopped_early, "rule should fire before 64 shards");
    for threads in [2, 4] {
        let out = run_sharded(&ThreadPool::new(threads), &plan, sim);
        assert_eq!(out.acc, base.acc, "{threads} threads");
        assert_eq!(out.shards_run, base.shards_run, "{threads} threads");
    }
}

#[test]
fn experiment_sweep_is_thread_invariant_end_to_end() {
    // Full RF-chain experiment through the engine: 1 vs 4 threads.
    let serial = ip3::run_parallel(
        Effort::quick(),
        -35.0,
        -15.0,
        2,
        11,
        &wlan_phy::IEEE_802_11A,
        &Engine::serial(),
    );
    let par = ip3::run_parallel(
        Effort::quick(),
        -35.0,
        -15.0,
        2,
        11,
        &wlan_phy::IEEE_802_11A,
        &Engine::with_threads(4),
    );
    assert_eq!(serial.points.len(), par.points.len());
    for (a, b) in serial.points.iter().zip(par.points.iter()) {
        assert_eq!(a, b);
    }
}

#[test]
fn split_seed_isolates_points_and_shards() {
    // Seeds across a sweep grid are pairwise distinct and stable.
    let mut seen = std::collections::HashSet::new();
    for point in 0..16u64 {
        for shard in 0..16u64 {
            assert!(seen.insert(split_seed(42, point, shard)));
        }
    }
    assert_eq!(split_seed(42, 3, 7), split_seed(42, 3, 7));
}
