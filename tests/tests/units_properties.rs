//! Property tests for the `wlan-units` dimension layer: the newtypes
//! must be zero-cost (same layout as `f64`), the blessed db↔linear
//! conversions must round-trip, and the unit arithmetic must reproduce
//! the pre-refactor raw-`f64` formulas bit for bit — the refactor is a
//! type-level change only, every numeric path is unchanged.

use std::mem::{align_of, size_of};
use wlan_dsp::Rng;
use wlan_rf::spec::{cascade_gain_db, cascade_noise_figure_db, StageSpec};
use wlan_units::{Amplitude, Db, Dbm, DbmPerHz, Hz, PowerW};

const TRIALS: usize = 2000;

/// A dB-ish value in a realistic RF range (−120 … +120 dB).
fn rand_db(rng: &mut Rng) -> f64 {
    240.0 * (rng.uniform() - 0.5)
}

#[test]
fn newtypes_are_layout_transparent() {
    assert_eq!(size_of::<Db>(), size_of::<f64>());
    assert_eq!(size_of::<Dbm>(), size_of::<f64>());
    assert_eq!(size_of::<DbmPerHz>(), size_of::<f64>());
    assert_eq!(size_of::<Hz>(), size_of::<f64>());
    assert_eq!(size_of::<PowerW>(), size_of::<f64>());
    assert_eq!(size_of::<Amplitude>(), size_of::<f64>());
    assert_eq!(align_of::<Dbm>(), align_of::<f64>());
    assert_eq!(size_of::<Option<Dbm>>(), size_of::<Option<f64>>());
    // A slice of newtypes is a slice of f64s: no padding, no tag.
    assert_eq!(size_of::<[Dbm; 16]>(), 16 * size_of::<f64>());
}

#[test]
fn prop_db_linear_roundtrip() {
    let mut rng = Rng::new(0x2001);
    for _ in 0..TRIALS {
        let db = rand_db(&mut rng);
        let back = Db::from_linear(Db(db).to_linear()).0;
        // log10(10^(x/10))·10 is exact to ~1 ulp of the exponent range.
        assert!((back - db).abs() < 1e-9, "{db} -> {back}");
        let amp = Db::from_amplitude_ratio(Db(db).to_amplitude_ratio()).0;
        assert!((amp - db).abs() < 1e-9, "{db} -> {amp} (amplitude)");
    }
}

#[test]
fn prop_dbm_watts_amplitude_roundtrip() {
    let mut rng = Rng::new(0x2002);
    for _ in 0..TRIALS {
        let dbm = rand_db(&mut rng);
        let via_w = Dbm::from_watts(Dbm(dbm).to_watts()).0;
        assert!((via_w - dbm).abs() < 1e-9, "{dbm} -> {via_w} (watts)");
        let via_a = Dbm::from_amplitude(Dbm(dbm).to_amplitude()).0;
        assert!((via_a - dbm).abs() < 1e-9, "{dbm} -> {via_a} (amplitude)");
    }
}

#[test]
fn prop_blessed_helpers_match_raw_formulas_exactly() {
    let mut rng = Rng::new(0x2003);
    for _ in 0..TRIALS {
        let x = rand_db(&mut rng);
        // The blessed conversions are required to be the literal
        // pre-refactor expressions — bit-identical, not just close.
        assert_eq!(Db(x).to_linear().to_bits(), 10f64.powf(x / 10.0).to_bits());
        assert_eq!(
            Db(x).to_amplitude_ratio().to_bits(),
            10f64.powf(x / 20.0).to_bits()
        );
        let lin = Db(x).to_linear();
        assert_eq!(
            Db::from_linear(lin).0.to_bits(),
            (10.0 * lin.log10()).to_bits()
        );
        assert_eq!(
            Db::from_amplitude_ratio(lin).0.to_bits(),
            (20.0 * lin.log10()).to_bits()
        );
        assert_eq!(
            Dbm(x).to_watts().0.to_bits(),
            (1e-3 * 10f64.powf(x / 10.0)).to_bits()
        );
        let w = Dbm(x).to_watts().0;
        assert_eq!(
            PowerW(w).to_dbm().0.to_bits(),
            (10.0 * (w / 1e-3).log10()).to_bits()
        );
    }
}

#[test]
fn prop_db_arithmetic_is_plain_f64_arithmetic() {
    let mut rng = Rng::new(0x2004);
    for _ in 0..TRIALS {
        let (a, b) = (rand_db(&mut rng), rand_db(&mut rng));
        assert_eq!((Db(a) + Db(b)).0.to_bits(), (a + b).to_bits());
        assert_eq!((Db(a) - Db(b)).0.to_bits(), (a - b).to_bits());
        assert_eq!((Dbm(a) + Db(b)).0.to_bits(), (a + b).to_bits());
        assert_eq!((Dbm(a) - Dbm(b)).0.to_bits(), (a - b).to_bits());
        assert_eq!((Db(a) * 2.0).0.to_bits(), (a * 2.0).to_bits());
        assert_eq!((Db(a) / 2.0).0.to_bits(), (a / 2.0).to_bits());
        assert_eq!((-Db(a)).0.to_bits(), (-a).to_bits());
        assert_eq!(Db(a) > Db(b), a > b);
    }
    assert_eq!(Db::ZERO.0, 0.0);
}

/// The Friis cascade through `Db` newtypes reproduces the pre-refactor
/// raw-`f64` loop bit for bit.
#[test]
fn prop_cascaded_nf_matches_raw_f64_formula() {
    let mut rng = Rng::new(0x2005);
    for _ in 0..500 {
        let stages: Vec<StageSpec> = (0..4)
            .map(|i| StageSpec {
                name: ["lna", "mixer", "filter", "bb"][i],
                gain_db: Db(30.0 * (rng.uniform() - 0.3)),
                nf_db: Db(12.0 * rng.uniform()),
            })
            .collect();

        // The exact expression the pre-refactor implementation used.
        let mut f_total = 10f64.powf(stages[0].nf_db.0 / 10.0);
        let mut gain = 10f64.powf(stages[0].gain_db.0 / 10.0);
        for s in &stages[1..] {
            f_total += (10f64.powf(s.nf_db.0 / 10.0) - 1.0) / gain;
            gain *= 10f64.powf(s.gain_db.0 / 10.0);
        }
        let raw_nf = 10.0 * f_total.log10();

        assert_eq!(
            cascade_noise_figure_db(&stages).0.to_bits(),
            raw_nf.to_bits()
        );
        let raw_gain: f64 = stages.iter().fold(0.0, |acc, s| acc + s.gain_db.0);
        assert_eq!(cascade_gain_db(&stages).0.to_bits(), raw_gain.to_bits());
    }
}

/// The cubic-nonlinearity IP3 identities through unit arithmetic
/// reproduce the raw-`f64` literals exactly.
#[test]
fn prop_ip3_identities_match_raw_f64() {
    let mut rng = Rng::new(0x2006);
    for _ in 0..TRIALS {
        let iip3 = rand_db(&mut rng);
        // P1dB = IIP3 − 9.636 dB for a pure cubic.
        assert_eq!(
            wlan_rf::nonlinearity::cubic_p1db_from_iip3(Dbm(iip3))
                .0
                .to_bits(),
            (iip3 - 9.636).to_bits()
        );
        // IIP3 = Pin + ΔIM3/2 as unit algebra (Dbm + Db/2).
        let (pin, fund, im3) = (rand_db(&mut rng), rand_db(&mut rng), rand_db(&mut rng));
        let typed = (Dbm(pin) + (Dbm(fund) - Dbm(im3)) / 2.0).0;
        assert_eq!(typed.to_bits(), (pin + (fund - im3) / 2.0).to_bits());
    }
}

#[test]
fn noise_density_integrates_to_level() {
    // −174 dBm/Hz over 20 MHz is the classic −101 dBm thermal floor.
    let floor = DbmPerHz(-174.0).integrate(Hz(20e6));
    assert!(
        (floor.0 - (-174.0 + 73.01029995663981)).abs() < 1e-9,
        "{floor}"
    );
    let back = DbmPerHz::from_level(floor, Hz(20e6));
    assert!((back.0 - -174.0).abs() < 1e-9, "{back}");
}
