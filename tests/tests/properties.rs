//! Property-style cross-crate tests: randomized payloads, rates, seeds
//! and impairment levels must never break the invariants the testbench
//! depends on. Cases are drawn from the workspace's own deterministic
//! generator so the suite needs no external property-testing crate and
//! stays bit-exactly reproducible offline.

use wlan_channel::level::{power_dbm, set_power_dbm};
use wlan_dsp::{Complex, Rng};
use wlan_phy::params::ALL_RATES;
use wlan_phy::{Receiver, Transmitter};

const CASES: usize = 24;

fn pick_rate(rng: &mut Rng) -> wlan_phy::Rate {
    ALL_RATES[rng.below(8) as usize]
}

/// Any payload at any rate loops back bit-exactly over a clean channel
/// with blind synchronization.
#[test]
fn prop_clean_loopback() {
    let mut meta = Rng::new(0x1001);
    for case in 0..CASES {
        let rate = pick_rate(&mut meta);
        let len = 1 + meta.below(399) as usize;
        let scr_seed = 1 + meta.below(0x7F) as u8;
        let mut rng = Rng::new(meta.next_u64());
        let mut psdu = vec![0u8; len];
        rng.bytes(&mut psdu);
        let burst = Transmitter::new(rate)
            .with_scrambler_seed(scr_seed)
            .transmit(&psdu);
        let got = Receiver::new().receive(&burst.samples).expect("decodes");
        assert_eq!(got.psdu, psdu, "case {case}: {rate} len {len}");
        assert_eq!(got.signal.rate, rate);
        assert_eq!(got.signal.length, len);
    }
}

/// Burst length always matches the rate equations.
#[test]
fn prop_burst_length_formula() {
    let mut meta = Rng::new(0x1002);
    for _ in 0..CASES {
        let rate = pick_rate(&mut meta);
        let len = 1 + meta.below(1999) as usize;
        let burst = Transmitter::new(rate).transmit(&vec![0xA5; len]);
        let expect = 320 + 80 * (1 + rate.data_symbols(len));
        assert_eq!(burst.samples.len(), expect, "{rate} len {len}");
        assert!((burst.duration() - rate.ppdu_duration(len)).abs() < 1e-12);
    }
}

/// A flat complex channel gain (any magnitude within 60 dB, any phase)
/// never breaks decoding.
#[test]
fn prop_flat_gain_invariance() {
    let mut meta = Rng::new(0x1003);
    for case in 0..CASES {
        let rate = pick_rate(&mut meta);
        let gain_db = meta.uniform_range(-50.0, 10.0);
        let phase = meta.uniform_range(0.0, std::f64::consts::TAU);
        let mut rng = Rng::new(meta.next_u64());
        let mut psdu = vec![0u8; 64];
        rng.bytes(&mut psdu);
        let burst = Transmitter::new(rate).transmit(&psdu);
        let g = Complex::from_polar(wlan_dsp::math::db_to_amp(gain_db), phase);
        let x: Vec<Complex> = burst.samples.iter().map(|&s| s * g).collect();
        let got = Receiver::new().receive(&x).expect("decodes");
        assert_eq!(got.psdu, psdu, "case {case}: {rate} gain {gain_db} dB");
    }
}

/// Power scaling is exact for any target level and signal.
#[test]
fn prop_level_setting() {
    let mut meta = Rng::new(0x1004);
    for _ in 0..CASES {
        let target = meta.uniform_range(-100.0, 10.0);
        let n = 16 + meta.below(496) as usize;
        let mut rng = Rng::new(meta.next_u64());
        let x: Vec<Complex> = (0..n).map(|_| rng.complex_gaussian(1.0)).collect();
        let y = set_power_dbm(&x, target);
        assert!((power_dbm(&y) - target).abs() < 1e-9, "target {target}");
    }
}

/// BER metering is symmetric and bounded.
#[test]
fn prop_ber_meter_bounds() {
    let mut meta = Rng::new(0x1005);
    for _ in 0..CASES {
        let n = 1 + meta.below(199) as usize;
        let mut rng = Rng::new(meta.next_u64());
        let mut a = vec![0u8; n];
        let mut b = vec![0u8; n];
        rng.bytes(&mut a);
        rng.bytes(&mut b);
        let mut m1 = wlan_meas::BerMeter::new();
        m1.update_bytes(&a, &b);
        let mut m2 = wlan_meas::BerMeter::new();
        m2.update_bytes(&b, &a);
        assert_eq!(m1.errors(), m2.errors());
        assert!(m1.ber() <= 1.0);
        let (lo, hi) = m1.confidence_interval();
        assert!(lo <= m1.ber() + 1e-12 && m1.ber() <= hi + 1e-12);
    }
}

/// PSDU lengths straddling a symbol-fill boundary for `rate`: the
/// largest length that still fits `n` symbols plus the one that spills
/// into `n + 1`, i.e. the extremes of tail/pad handling.
fn edge_lengths(rate: wlan_phy::Rate) -> Vec<usize> {
    let mut out = vec![1];
    let mut len = 40;
    let base = rate.data_symbols(len);
    while rate.data_symbols(len + 1) == base {
        len += 1;
    }
    out.push(len); // maximum padding in the last symbol
    out.push(len + 1); // spills into a fresh symbol
    out
}

/// Puncture → erasure-insert → Viterbi round-trips a full data field at
/// every rate, including PSDU lengths that maximize tail/pad handling.
#[test]
fn prop_puncture_depuncture_roundtrip_all_rates() {
    use wlan_phy::puncture::{depuncture, expansion, puncture};
    use wlan_phy::viterbi::Llr;

    let mut meta = Rng::new(0x1007);
    for rate in ALL_RATES {
        for len in edge_lengths(rate) {
            let n_sym = rate.data_symbols(len);
            let n_info = n_sym * rate.ndbps();
            let mut msg = vec![0u8; n_info];
            let mut rng = Rng::new(meta.next_u64());
            rng.bits(&mut msg[..n_info - 6]); // keep the 6 zero tail bits
            let coded = wlan_phy::convolutional::encode(&msg);
            let tx = puncture(&coded, rate.code_rate());
            assert_eq!(tx.len(), n_sym * rate.ncbps(), "{rate} len {len}");
            let (kept, period) = expansion(rate.code_rate());
            assert_eq!(tx.len() * period, coded.len() * kept);
            let llrs: Vec<Llr> = tx
                .iter()
                .map(|&b| if b == 1 { -1.0 } else { 1.0 })
                .collect();
            let full = depuncture(&llrs, rate.code_rate());
            assert_eq!(full.len(), coded.len(), "{rate} len {len}");
            // Surviving positions carry the coded bits; stolen positions
            // come back as erasures.
            let mut survivors = 0usize;
            for (&llr, &bit) in full.iter().zip(coded.iter()) {
                if llr != 0.0 {
                    assert_eq!(u8::from(llr < 0.0), bit, "{rate} len {len}");
                    survivors += 1;
                }
            }
            assert_eq!(survivors, tx.len());
            assert_eq!(
                wlan_phy::viterbi::decode_soft(&full),
                msg,
                "{rate} len {len}"
            );
        }
    }
}

/// Interleaving is a self-inverse pair for whole data fields at every
/// rate, for both hard bits and LLRs, at tail/pad edge lengths.
#[test]
fn prop_interleaver_roundtrip_all_rates() {
    use wlan_phy::interleaver::Interleaver;

    let mut meta = Rng::new(0x1008);
    for rate in ALL_RATES {
        let il = Interleaver::new(rate);
        assert_eq!(il.block_len(), rate.ncbps(), "{rate}");
        for len in edge_lengths(rate) {
            let n_sym = rate.data_symbols(len);
            let mut rng = Rng::new(meta.next_u64());
            for sym in 0..n_sym {
                let mut bits = vec![0u8; rate.ncbps()];
                rng.bits(&mut bits);
                let tx = il.interleave(&bits);
                assert_eq!(il.deinterleave_bits(&tx), bits, "{rate} sym {sym}");
                // The LLR path must apply the same inverse permutation.
                let llrs: Vec<f64> = tx
                    .iter()
                    .map(|&b| if b == 1 { -1.0 } else { 1.0 })
                    .collect();
                let back = il.deinterleave(&llrs);
                for (k, &l) in back.iter().enumerate() {
                    assert_eq!(u8::from(l < 0.0), bits[k], "{rate} sym {sym} bit {k}");
                }
            }
        }
    }
}

/// Netlist values with engineering suffixes parse consistently.
#[test]
fn prop_netlist_value_roundtrip() {
    let mut meta = Rng::new(0x1006);
    for _ in 0..CASES {
        let mantissa = meta.uniform_range(0.001, 999.0);
        let (sfx, mult) =
            [("", 1.0), ("k", 1e3), ("M", 1e6), ("m", 1e-3), ("u", 1e-6)][meta.below(5) as usize];
        let text = format!("{mantissa}{sfx}");
        let parsed = wlan_ams::netlist::parse_value(&text).expect("parses");
        assert!(
            (parsed - mantissa * mult).abs() < 1e-9 * mantissa * mult.max(1.0),
            "{text}"
        );
    }
}
