//! Property-based cross-crate tests: randomized payloads, rates, seeds
//! and impairment levels must never break the invariants the testbench
//! depends on.

use proptest::prelude::*;
use wlan_channel::level::{power_dbm, set_power_dbm};
use wlan_dsp::{Complex, Rng};
use wlan_phy::params::ALL_RATES;
use wlan_phy::{Receiver, Transmitter};

fn rate_strategy() -> impl Strategy<Value = wlan_phy::Rate> {
    (0usize..8).prop_map(|i| ALL_RATES[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any payload at any rate loops back bit-exactly over a clean
    /// channel with blind synchronization.
    #[test]
    fn prop_clean_loopback(
        rate in rate_strategy(),
        len in 1usize..400,
        seed in 0u64..10_000,
        scr_seed in 1u8..0x80,
    ) {
        let mut rng = Rng::new(seed);
        let mut psdu = vec![0u8; len];
        rng.bytes(&mut psdu);
        let burst = Transmitter::new(rate)
            .with_scrambler_seed(scr_seed)
            .transmit(&psdu);
        let got = Receiver::new().receive(&burst.samples).expect("decodes");
        prop_assert_eq!(got.psdu, psdu);
        prop_assert_eq!(got.signal.rate, rate);
        prop_assert_eq!(got.signal.length, len);
    }

    /// Burst length always matches the rate equations.
    #[test]
    fn prop_burst_length_formula(rate in rate_strategy(), len in 1usize..2000) {
        let burst = Transmitter::new(rate).transmit(&vec![0xA5; len]);
        let expect = 320 + 80 * (1 + rate.data_symbols(len));
        prop_assert_eq!(burst.samples.len(), expect);
        prop_assert!((burst.duration() - rate.ppdu_duration(len)).abs() < 1e-12);
    }

    /// A flat complex channel gain (any magnitude within 60 dB, any
    /// phase) never breaks decoding.
    #[test]
    fn prop_flat_gain_invariance(
        rate in rate_strategy(),
        gain_db in -50.0..10.0f64,
        phase in 0.0..std::f64::consts::TAU,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::new(seed);
        let mut psdu = vec![0u8; 64];
        rng.bytes(&mut psdu);
        let burst = Transmitter::new(rate).transmit(&psdu);
        let g = Complex::from_polar(10f64.powf(gain_db / 20.0), phase);
        let x: Vec<Complex> = burst.samples.iter().map(|&s| s * g).collect();
        let got = Receiver::new().receive(&x).expect("decodes");
        prop_assert_eq!(got.psdu, psdu);
    }

    /// Power scaling is exact for any target level and signal.
    #[test]
    fn prop_level_setting(target in -100.0..10.0f64, seed in 0u64..1000, n in 16usize..512) {
        let mut rng = Rng::new(seed);
        let x: Vec<Complex> = (0..n).map(|_| rng.complex_gaussian(1.0)).collect();
        let y = set_power_dbm(&x, target);
        prop_assert!((power_dbm(&y) - target).abs() < 1e-9);
    }

    /// BER metering is symmetric and bounded.
    #[test]
    fn prop_ber_meter_bounds(seed in 0u64..1000, n in 1usize..200) {
        let mut rng = Rng::new(seed);
        let mut a = vec![0u8; n];
        let mut b = vec![0u8; n];
        rng.bytes(&mut a);
        rng.bytes(&mut b);
        let mut m1 = wlan_meas::BerMeter::new();
        m1.update_bytes(&a, &b);
        let mut m2 = wlan_meas::BerMeter::new();
        m2.update_bytes(&b, &a);
        prop_assert_eq!(m1.errors(), m2.errors());
        prop_assert!(m1.ber() <= 1.0);
        let (lo, hi) = m1.confidence_interval();
        prop_assert!(lo <= m1.ber() + 1e-12 && m1.ber() <= hi + 1e-12);
    }

    /// Netlist values with engineering suffixes parse consistently.
    #[test]
    fn prop_netlist_value_roundtrip(mantissa in 0.001..999.0f64, suffix in 0usize..5) {
        let (sfx, mult) = [("", 1.0), ("k", 1e3), ("M", 1e6), ("m", 1e-3), ("u", 1e-6)][suffix];
        let text = format!("{mantissa}{sfx}");
        let parsed = wlan_ams::netlist::parse_value(&text).expect("parses");
        prop_assert!((parsed - mantissa * mult).abs() < 1e-9 * mantissa * mult.max(1.0));
    }
}
