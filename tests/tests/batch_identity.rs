//! Differential test layer for the batch plane: every `_batch` kernel
//! must be **bit-identical** to its scalar `_into` counterpart — and,
//! where one exists, to the conformance reference implementation —
//! across randomized rates, payload lengths (tail/pad edges), RF
//! configurations and batch sizes (1, N, and a ragged last batch).
//!
//! Exact `==` on decoded bits and `f64::to_bits` on samples throughout:
//! the batch plane exists so the goldens, the pinned sweeps and the
//! Annex G gates never need re-blessing, so "close" is failure here.

use wlan_ams::CosimReceiver;
use wlan_dsp::fft::Fft;
use wlan_dsp::{Complex, Rng};
use wlan_phy::viterbi::{Llr, ViterbiDecoder};
use wlan_phy::Rate;
use wlan_rf::nonlinearity::Nonlinearity;
use wlan_rf::receiver::{DoubleConversionReceiver, RfConfig, RfScratch};
use wlan_sim::link::{AdjacentChannel, FrontEnd, LinkConfig, LinkSimulation};

fn assert_bits_eq(got: &[Complex], want: &[Complex], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(
            g.re.to_bits(),
            w.re.to_bits(),
            "{what}: re diverges at sample {i}: {} vs {}",
            g.re,
            w.re
        );
        assert_eq!(
            g.im.to_bits(),
            w.im.to_bits(),
            "{what}: im diverges at sample {i}: {} vs {}",
            g.im,
            w.im
        );
    }
}

fn noise_burst(rng: &mut Rng, n: usize, power: f64) -> Vec<Complex> {
    (0..n).map(|_| rng.complex_gaussian(power)).collect()
}

/// RF chain: `process_batch_into` over a multi-segment plane equals the
/// per-frame fused kernel equals the staged reference pipeline, for
/// several front-end configs and segment layouts (single segment,
/// equal segments, ragged lengths).
#[test]
fn rf_chain_batch_matches_scalar_and_staged() {
    let configs = vec![
        ("default", RfConfig::default()),
        (
            "noiseless",
            RfConfig {
                noise_enabled: false,
                ..RfConfig::default()
            },
        ),
        (
            "narrow-filter-rapp-lna",
            RfConfig {
                channel_filter_edge_hz: wlan_units::Hz(6e6),
                lna_nonlinearity: Nonlinearity::rapp(wlan_units::Dbm(-25.0)),
                ..RfConfig::default()
            },
        ),
    ];
    let layouts: Vec<Vec<usize>> = vec![
        vec![1600],               // batch of one
        vec![1200, 1200, 1200],   // equal segments
        vec![2000, 640, 1333, 4], // ragged, incl. a tiny tail
    ];
    let mut rng = Rng::new(0x5eed);
    for (name, cfg) in &configs {
        for (li, layout) in layouts.iter().enumerate() {
            let mut plane = Vec::new();
            let mut segments = Vec::new();
            for &len in layout {
                plane.extend(noise_burst(&mut rng, len, 1e-7));
                segments.push(len);
            }
            let seed = 0xabc + li as u64;
            let mut batch_rx = DoubleConversionReceiver::new(*cfg, seed);
            let mut frame_rx = DoubleConversionReceiver::new(*cfg, seed);
            let mut staged_rx = DoubleConversionReceiver::new(*cfg, seed);
            let mut scratch = RfScratch::default();
            let mut out_plane = Vec::new();
            let mut out_segments = Vec::new();
            batch_rx.process_batch_into(
                &plane,
                &segments,
                &mut scratch,
                &mut out_plane,
                &mut out_segments,
            );
            assert_eq!(out_segments.len(), segments.len(), "{name}/{li}");
            assert_eq!(
                out_segments.iter().sum::<usize>(),
                out_plane.len(),
                "{name}/{li}: segment sum"
            );
            // Reference 1: the per-frame fused kernel, frame by frame.
            let mut frame_plane = Vec::new();
            let mut y = Vec::new();
            let mut start = 0;
            for &len in &segments {
                frame_rx.process_into(&plane[start..start + len], &mut scratch, &mut y);
                frame_plane.extend_from_slice(&y);
                start += len;
            }
            assert_bits_eq(
                &out_plane,
                &frame_plane,
                &format!("{name}/{li} vs process_into"),
            );
            // Reference 2: the staged Vec-pipeline reference.
            let mut staged_plane = Vec::new();
            let mut start = 0;
            for &len in &segments {
                staged_plane.extend(staged_rx.process_staged(&plane[start..start + len]));
                start += len;
            }
            assert_bits_eq(
                &out_plane,
                &staged_plane,
                &format!("{name}/{li} vs process_staged"),
            );
        }
    }
}

/// 64-point FFT: `forward64_batch`/`inverse64_batch` over a lane-major
/// plane equal the scalar specialized kernel per lane, for batch sizes
/// 1, a small odd count, and a wide plane.
#[test]
fn fft64_batch_matches_scalar_per_lane() {
    let fft = Fft::new(64);
    let mut rng = Rng::new(0xfff);
    for &lanes in &[1usize, 3, 16] {
        let lane_inputs: Vec<Vec<Complex>> =
            (0..lanes).map(|_| noise_burst(&mut rng, 64, 1.0)).collect();
        let mut plane = vec![Complex::ZERO; 64 * lanes];
        for (l, lane) in lane_inputs.iter().enumerate() {
            for (k, &v) in lane.iter().enumerate() {
                plane[k * lanes + l] = v;
            }
        }
        fft.forward64_batch(&mut plane, lanes);
        for (l, lane) in lane_inputs.iter().enumerate() {
            let mut s = lane.clone();
            fft.forward(&mut s);
            let got: Vec<Complex> = (0..64).map(|k| plane[k * lanes + l]).collect();
            assert_bits_eq(&got, &s, &format!("forward64_batch lanes={lanes} lane={l}"));
        }
        fft.inverse64_batch(&mut plane, lanes);
        for (l, lane) in lane_inputs.iter().enumerate() {
            let mut s = lane.clone();
            fft.forward(&mut s);
            fft.inverse(&mut s);
            let got: Vec<Complex> = (0..64).map(|k| plane[k * lanes + l]).collect();
            assert_bits_eq(&got, &s, &format!("inverse64_batch lanes={lanes} lane={l}"));
        }
    }
}

/// Viterbi: `decode_soft_batch` over a step-major LLR plane equals
/// `decode_soft_into` per lane equals the conformance reference, for
/// message lengths hitting the tail/warm-up edges and batch sizes
/// 1, 2 and 5.
#[test]
fn viterbi_batch_matches_scalar_and_reference() {
    let mut rng = Rng::new(0xdec0de);
    let mut dec = ViterbiDecoder::new();
    // 1 and 5 information bits sit inside the 6-step warm-up; the rest
    // cover typical OFDM symbol payloads.
    for &message_bits in &[1usize, 5, 48, 97, 240] {
        for &lanes in &[1usize, 2, 5] {
            let lane_llrs: Vec<Vec<Llr>> = (0..lanes)
                .map(|_| {
                    let mut bits: Vec<u8> = (0..message_bits)
                        .map(|_| rng.next_u64() as u8 & 1)
                        .collect();
                    bits.extend_from_slice(&[0; 6]);
                    wlan_phy::convolutional::encode(&bits)
                        .iter()
                        .map(|&b| (1.0 - 2.0 * b as f64) + 0.7 * rng.gaussian())
                        .collect()
                })
                .collect();
            let n_steps = lane_llrs[0].len() / 2;
            let mut plane = vec![0.0f64; 2 * n_steps * lanes];
            for t in 0..n_steps {
                for (l, lane) in lane_llrs.iter().enumerate() {
                    plane[t * 2 * lanes + l] = lane[2 * t];
                    plane[t * 2 * lanes + lanes + l] = lane[2 * t + 1];
                }
            }
            let mut batch_bits = Vec::new();
            dec.decode_soft_batch(&plane, lanes, &mut batch_bits);
            assert_eq!(batch_bits.len(), n_steps * lanes);
            let mut scalar_bits = Vec::new();
            for (l, lane) in lane_llrs.iter().enumerate() {
                dec.decode_soft_into(lane, &mut scalar_bits);
                let got = &batch_bits[l * n_steps..(l + 1) * n_steps];
                assert_eq!(
                    got,
                    &scalar_bits[..],
                    "decode_soft_batch bits={message_bits} lanes={lanes} lane={l} vs scalar"
                );
                let reference = wlan_conformance::refimpl::viterbi_reference(lane);
                assert_eq!(
                    got,
                    &reference[..],
                    "decode_soft_batch bits={message_bits} lanes={lanes} lane={l} vs refimpl"
                );
            }
        }
    }
}

/// Mixed-signal co-simulation: the chunked device-major block path
/// equals the sample-by-sample loop bit for bit across device configs
/// (default netlist, narrowed filter edge, analog osr down to 1) and an
/// input length that straddles chunk boundaries.
#[test]
fn cosim_block_path_matches_sample_by_sample() {
    let mut rng = Rng::new(0xc0);
    // 2500 samples: spans two 1024-sample chunks plus a ragged tail.
    let x = noise_burst(&mut rng, 2500, 1e-6);
    type Builder = Box<dyn Fn() -> CosimReceiver>;
    let builders: Vec<(&str, Builder)> = vec![
        (
            "default osr=2",
            Box::new(|| CosimReceiver::new(80e6, 2, 4).unwrap()),
        ),
        (
            "default osr=1",
            Box::new(|| CosimReceiver::new(80e6, 1, 4).unwrap()),
        ),
        (
            "narrow filter osr=3",
            Box::new(|| CosimReceiver::with_filter_edge(6e6, 80e6, 3, 4).unwrap()),
        ),
    ];
    for (name, build) in &builders {
        let mut block = build();
        let mut serial = build();
        let mut got = Vec::new();
        let mut want = Vec::new();
        // Two passes so carried state (decimation phase, DC blocker,
        // device internals) stays aligned across calls too.
        for pass in 0..2 {
            block.process_into(&x, &mut got);
            serial.process_into_sample_by_sample(&x, &mut want);
            assert_bits_eq(&got, &want, &format!("{name} pass {pass}"));
            assert_eq!(block.steps_taken(), serial.steps_taken(), "{name} steps");
        }
    }
}

/// The batch link driver against the serial per-packet reference,
/// cross-crate: one RF-baseband config with the adjacent channel and a
/// ragged final batch. (The per-front-end matrix lives in wlan-sim's
/// unit tests; this pins the public surface.)
#[test]
fn link_run_batched_matches_serial_run() {
    let cfg = LinkConfig {
        rate: Rate::R24,
        psdu_len: 52,
        packets: 5,
        seed: 0xba7c4,
        rx_level_dbm: -52.0,
        adjacent: Some(AdjacentChannel::first()),
        front_end: FrontEnd::RfBaseband(RfConfig::default()),
        ..LinkConfig::default()
    };
    let sim = LinkSimulation::new(cfg);
    let want = sim.run();
    for batch in [1usize, 2, 8] {
        let got = sim.run_batched(batch);
        assert_eq!(got.meter, want.meter, "batch {batch}");
        assert_eq!(got.decoded_packets, want.decoded_packets, "batch {batch}");
        assert_eq!(got.evm_db, want.evm_db, "batch {batch}");
        assert_eq!(got.packets, want.packets, "batch {batch}");
    }
}
