//! Golden-baseline regression gate: every pinned experiment sweep must
//! reproduce the snapshot committed under `tests/golden/`, field by
//! field, within its tolerance policy.
//!
//! On drift the failure message names each offending field and a JSON
//! drift report lands in `target/golden-drift/` for CI to upload. If
//! the change is intended, re-bless with:
//!
//! ```text
//! WLANSIM_BLESS=1 cargo test -p wlan-tests --test golden
//! ```

use std::path::Path;
use wlan_conformance::{assert_golden, pinned, GoldenStatus};

fn golden_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/golden"))
}

fn drift_dir() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../target/golden-drift"
    ))
}

fn run(golden: wlan_conformance::pinned::PinnedGolden) {
    let status = assert_golden(
        golden_dir(),
        drift_dir(),
        golden.name,
        &golden.fields,
        &golden.policy,
    );
    // Either outcome is a pass; Blessed only happens under
    // WLANSIM_BLESS=1.
    assert!(matches!(
        status,
        GoldenStatus::Matched | GoldenStatus::Blessed
    ));
}

#[test]
fn golden_ip3_sweep() {
    run(pinned::ip3_sweep());
}

#[test]
fn golden_level_sweep() {
    run(pinned::level_sweep());
}

#[test]
fn golden_nf_sweep() {
    run(pinned::nf_sweep());
}

#[test]
fn golden_blocking_sweep() {
    run(pinned::blocking_sweep());
}

#[test]
fn golden_evm_sweep() {
    run(pinned::evm_sweep());
}
